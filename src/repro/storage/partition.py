"""Horizontal partitions with MVCC row state.

A partition stores rows column-wise (:class:`ColumnFragment` per column) and
two MVCC stamp vectors:

* ``cts`` — the transaction id that created each row;
* ``dts`` — the transaction id that invalidated it (0 = still live).

Updates in the delta-main architecture never modify rows in place: the new
version is inserted into the delta partition and the old row's ``dts`` is
stamped (Section 2).  A snapshot's visibility is therefore a pure function
of the stamps, materialized either as a numpy mask or as the packed
:class:`BitVector` the consistent view manager hands to the aggregate cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import StorageError
from .bitvector import BitVector
from .column import ColumnFragment
from .dictionary import MainDictionary
from .schema import Schema
from .vector import IntVector

LIVE = 0  # dts value of a row that has not been invalidated


@dataclass(frozen=True)
class ColumnStats:
    """One column's resident synopsis entry: the three facts pruning needs."""

    min: object
    max: object
    has_nulls: bool


class Partition:
    """One horizontal partition of a table.

    ``kind`` is ``"main"`` (read-optimized, sorted dictionaries, bulk-built)
    or ``"delta"`` (write-optimized, append-order dictionaries).  ``name``
    distinguishes multiple partitions of the same kind under hot/cold
    multi-partitioning (e.g. ``"hot_main"``; Section 5.4).
    """

    def __init__(self, name: str, kind: str, schema: Schema):
        if kind not in ("main", "delta"):
            raise StorageError(f"unknown partition kind {kind!r}")
        self.name = name
        self.kind = kind
        self.schema = schema
        if kind == "delta":
            self._columns: Dict[str, ColumnFragment] = {
                c.name: ColumnFragment(c.name) for c in schema
            }
        else:
            self._columns = {
                c.name: ColumnFragment(c.name, MainDictionary()) for c in schema
            }
        self._cts = IntVector()
        self._dts = IntVector()
        # Monotonic count of invalidations ever applied to this partition.
        # Cache entries snapshot it to detect "nothing was invalidated since
        # entry creation" in O(1), skipping the bit-vector diff entirely.
        self.invalidation_epoch = 0
        # Monotonic write counter: bumped on every append and invalidation.
        # The plan cache keys on the owning table's version (which folds
        # this in), so "has anything changed since this plan was built?"
        # is an integer compare instead of a content inspection.
        self.version = 0
        # Resident synopsis: per-column (min, max, has_nulls), rebuilt
        # lazily whenever the version moves.  This is what lets the pruner
        # give verdicts on memory-mapped cold partitions without disk I/O —
        # and spares resident partitions the repeated O(dict) min/max walk.
        self._synopsis: Dict[str, ColumnStats] = {}
        self._synopsis_version = -1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build_main(
        cls,
        name: str,
        schema: Schema,
        rows: Sequence[Dict[str, object]],
        cts: Sequence[int],
        dts: Sequence[int],
    ) -> "Partition":
        """Bulk-build a read-optimized main partition (delta merge path)."""
        if not (len(rows) == len(cts) == len(dts)):
            raise StorageError("rows/cts/dts length mismatch in build_main")
        partition = cls(name, "main", schema)
        for col in schema:
            values = [row[col.name] for row in rows]
            partition._columns[col.name] = ColumnFragment.build_main(col.name, values)
        partition._cts.extend(cts)
        partition._dts.extend(dts)
        return partition

    def append_row(self, row: Dict[str, object], cts: int) -> int:
        """Append a validated row created by transaction ``cts``; returns its index.

        Only valid on delta partitions — the main is immutable between
        merges except for ``dts`` invalidation stamps.
        """
        if self.kind != "delta":
            raise StorageError(f"cannot append to {self.kind} partition {self.name!r}")
        for col in self.schema:
            self._columns[col.name].append(row[col.name])
        self._cts.append(cts)
        self._dts.append(LIVE)
        self.version += 1
        return len(self._cts) - 1

    def invalidate(self, row: int, dts: int) -> None:
        """Stamp row ``row`` as invalidated by transaction ``dts``."""
        if row < 0 or row >= len(self._cts):
            raise StorageError(f"row {row} out of range in partition {self.name!r}")
        if self._dts[row] != LIVE:
            raise StorageError(
                f"row {row} in partition {self.name!r} is already invalidated"
            )
        if getattr(self._dts, "is_mapped_store", False):
            # Cold files are immutable: promote dts to a resident copy so
            # the stamp can land.  cts stays mapped — creation stamps never
            # change after the merge that built this main.
            self._promote_dts()
        self._dts[row] = dts
        self.invalidation_epoch += 1
        self.version += 1

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        """Physical rows, including invalidated ones."""
        return len(self._cts)

    def is_physically_empty(self) -> bool:
        """True when the partition holds zero physical rows."""
        return len(self._cts) == 0

    def column(self, name: str) -> ColumnFragment:
        """The fragment of one column (StorageError if unknown)."""
        try:
            return self._columns[name]
        except KeyError:
            raise StorageError(
                f"partition {self.name!r} has no column {name!r}"
            ) from None

    def column_names(self) -> List[str]:
        """Names of the stored columns."""
        return list(self._columns)

    def get_row(self, row: int) -> Dict[str, object]:
        """Decoded values of one row as a dict (diagnostics / merge path)."""
        return {name: frag.value_at(row) for name, frag in self._columns.items()}

    def cts_array(self) -> np.ndarray:
        """Zero-copy view of creation stamps."""
        return self._cts.view()

    def dts_array(self) -> np.ndarray:
        """Zero-copy view of invalidation stamps (0 = live)."""
        return self._dts.view()

    # ------------------------------------------------------------------
    # visibility
    # ------------------------------------------------------------------
    def visible_mask(self, snapshot: int) -> np.ndarray:
        """Boolean mask of rows visible to ``snapshot``.

        A row is visible iff it was created at or before the snapshot and
        not invalidated at or before it.
        """
        cts = self._cts.view()
        dts = self._dts.view()
        return (cts <= snapshot) & ((dts == LIVE) | (dts > snapshot))

    def visibility(self, snapshot: int) -> BitVector:
        """Packed visibility vector for ``snapshot`` (consistent view manager)."""
        return BitVector.from_numpy_bool(self.visible_mask(snapshot))

    def visible_count(self, snapshot: int) -> int:
        """Number of rows visible to ``snapshot``."""
        return int(self.visible_mask(snapshot).sum())

    def visible_rows(self, snapshot: int) -> np.ndarray:
        """Indices of visible rows for ``snapshot``."""
        return np.flatnonzero(self.visible_mask(snapshot))

    def visible_rows_in(self, snapshot: int, start: int, stop: int) -> np.ndarray:
        """Indices of visible rows for ``snapshot`` within ``[start, stop)``.

        The stamp vectors are sliced before the visibility compare, so the
        cost is O(stop - start) regardless of the partition's total size —
        this is what lets delta-memo compensation scan only the rows
        appended since the memo's watermark.
        """
        start = max(0, start)
        stop = min(stop, len(self._cts))
        if start >= stop:
            return np.empty(0, dtype=np.int64)
        cts = self._cts.view()[start:stop]
        dts = self._dts.view()[start:stop]
        mask = (cts <= snapshot) & ((dts == LIVE) | (dts > snapshot))
        return np.flatnonzero(mask) + start

    def min_stamp_after(self, snapshot: int, start: int = 0, stop: Optional[int] = None) -> float:
        """The smallest MVCC stamp strictly greater than ``snapshot`` in rows
        ``[start, stop)``, over both stamp vectors; ``inf`` when none exists.

        The delta memo uses this as its validity *horizon*: a memo anchored
        at snapshot ``S`` stays usable for any reader ``S' < horizon``,
        because no covered row changes visibility anywhere in ``(S, horizon)``.
        """
        stop = len(self._cts) if stop is None else min(stop, len(self._cts))
        start = max(0, start)
        horizon = float("inf")
        if start >= stop:
            return horizon
        for stamps in (self._cts.view()[start:stop], self._dts.view()[start:stop]):
            later = stamps[stamps > snapshot]
            if len(later):
                horizon = min(horizon, float(later.min()))
        return horizon

    # ------------------------------------------------------------------
    # statistics (resident synopsis)
    # ------------------------------------------------------------------
    def column_stats(self, column: str) -> ColumnStats:
        """The synopsis entry of one column: (min, max, has_nulls).

        Cached per partition version — appends and invalidations bump the
        version, which lazily invalidates the whole synopsis.  For mapped
        cold fragments every fact is answered from metadata (lazy
        dictionary min/max, manifest-seeded null flag), so prune checks
        never fault the cold files in.
        """
        if self._synopsis_version != self.version:
            self._synopsis = {}
            self._synopsis_version = self.version
        stats = self._synopsis.get(column)
        if stats is None:
            fragment = self.column(column)
            stats = ColumnStats(
                min=fragment.min_value(),
                max=fragment.max_value(),
                has_nulls=fragment.has_nulls(),
            )
            self._synopsis[column] = stats
        return stats

    def min_value(self, column: str):
        """Dictionary min of a column — the Equation 5 prefilter input.

        Note this is the *dictionary* range, as in the paper: invalidated
        rows keep their values in the dictionary, so pruning stays correct
        (conservative) without visibility checks on the hot path.
        """
        return self.column_stats(column).min

    def max_value(self, column: str):
        """Dictionary max of a column (see :meth:`min_value`)."""
        return self.column_stats(column).max

    def has_nulls(self, column: str) -> bool:
        """Whether any row of ``column`` is NULL (synopsis-cached)."""
        return self.column_stats(column).has_nulls

    # ------------------------------------------------------------------
    # storage tiers
    # ------------------------------------------------------------------
    @property
    def storage_tier(self) -> str:
        """``"mapped"`` once the fragments live in the cold store, else
        ``"resident"``."""
        for fragment in self._columns.values():
            if fragment.is_mapped:
                return "mapped"
        return "resident"

    def attach_mapped_stamps(self, cts, dts) -> None:
        """Swap the MVCC stamp vectors onto mapped backing (demotion).

        ``dts`` may be None to keep the resident vector — recovery uses
        that when WAL replay stamped invalidations after the demotion, so
        the cold ``dts.bin`` is stale.
        """
        if len(cts) != len(self._cts):
            raise StorageError(
                f"mapped stamps for {self.name!r} have {len(cts)} rows, "
                f"partition has {len(self._cts)}"
            )
        self._cts = cts
        if dts is not None:
            self._dts = dts

    def _promote_dts(self) -> None:
        """Copy a mapped ``dts`` vector back to a resident one (copy-on-write
        before an invalidation stamp lands on a cold partition)."""
        resident = IntVector()
        resident.extend(self._dts.view())
        self._dts = resident

    def release_cold(self) -> int:
        """Drop every loaded cold handle (memmaps, lazy dictionaries).

        Returns the resident bytes freed.  Mapped data re-faults in
        transparently on next access; resident partitions are untouched.
        """
        freed = sum(frag.release() for frag in self._columns.values())
        for stamps in (self._cts, self._dts):
            release = getattr(stamps, "release", None)
            if release is not None:
                release()
        return freed

    def nbytes(self) -> int:
        """Approximate bytes: all column fragments + MVCC stamp vectors."""
        return self.nbytes_resident() + self.nbytes_mapped()

    def nbytes_resident(self) -> int:
        """Bytes held in RAM (mapped cold pages excluded)."""
        total = sum(frag.nbytes_resident() for frag in self._columns.values())
        for stamps in (self._cts, self._dts):
            if not getattr(stamps, "is_mapped_store", False):
                total += stamps.nbytes()
        return total

    def nbytes_mapped(self) -> int:
        """Bytes backed by cold-tier files (0 while fully resident)."""
        total = sum(frag.nbytes_mapped() for frag in self._columns.values())
        for stamps in (self._cts, self._dts):
            if getattr(stamps, "is_mapped_store", False):
                total += stamps.nbytes()
        return total

    def nbytes_columns(self, names: Iterable[str]) -> int:
        """Approximate bytes of a subset of columns (Section 6.2 bench)."""
        return sum(self._columns[name].nbytes() for name in names)

    def __repr__(self) -> str:
        tier = ", mapped" if self.storage_tier == "mapped" else ""
        return (
            f"Partition({self.name!r}, kind={self.kind}, rows={self.row_count}{tier})"
        )
