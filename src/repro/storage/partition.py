"""Horizontal partitions with MVCC row state.

A partition stores rows column-wise (:class:`ColumnFragment` per column) and
two MVCC stamp vectors:

* ``cts`` — the transaction id that created each row;
* ``dts`` — the transaction id that invalidated it (0 = still live).

Updates in the delta-main architecture never modify rows in place: the new
version is inserted into the delta partition and the old row's ``dts`` is
stamped (Section 2).  A snapshot's visibility is therefore a pure function
of the stamps, materialized either as a numpy mask or as the packed
:class:`BitVector` the consistent view manager hands to the aggregate cache.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import StorageError
from .bitvector import BitVector
from .column import ColumnFragment
from .dictionary import MainDictionary
from .schema import Schema
from .vector import IntVector

LIVE = 0  # dts value of a row that has not been invalidated


class Partition:
    """One horizontal partition of a table.

    ``kind`` is ``"main"`` (read-optimized, sorted dictionaries, bulk-built)
    or ``"delta"`` (write-optimized, append-order dictionaries).  ``name``
    distinguishes multiple partitions of the same kind under hot/cold
    multi-partitioning (e.g. ``"hot_main"``; Section 5.4).
    """

    def __init__(self, name: str, kind: str, schema: Schema):
        if kind not in ("main", "delta"):
            raise StorageError(f"unknown partition kind {kind!r}")
        self.name = name
        self.kind = kind
        self.schema = schema
        if kind == "delta":
            self._columns: Dict[str, ColumnFragment] = {
                c.name: ColumnFragment(c.name) for c in schema
            }
        else:
            self._columns = {
                c.name: ColumnFragment(c.name, MainDictionary()) for c in schema
            }
        self._cts = IntVector()
        self._dts = IntVector()
        # Monotonic count of invalidations ever applied to this partition.
        # Cache entries snapshot it to detect "nothing was invalidated since
        # entry creation" in O(1), skipping the bit-vector diff entirely.
        self.invalidation_epoch = 0
        # Monotonic write counter: bumped on every append and invalidation.
        # The plan cache keys on the owning table's version (which folds
        # this in), so "has anything changed since this plan was built?"
        # is an integer compare instead of a content inspection.
        self.version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build_main(
        cls,
        name: str,
        schema: Schema,
        rows: Sequence[Dict[str, object]],
        cts: Sequence[int],
        dts: Sequence[int],
    ) -> "Partition":
        """Bulk-build a read-optimized main partition (delta merge path)."""
        if not (len(rows) == len(cts) == len(dts)):
            raise StorageError("rows/cts/dts length mismatch in build_main")
        partition = cls(name, "main", schema)
        for col in schema:
            values = [row[col.name] for row in rows]
            partition._columns[col.name] = ColumnFragment.build_main(col.name, values)
        partition._cts.extend(cts)
        partition._dts.extend(dts)
        return partition

    def append_row(self, row: Dict[str, object], cts: int) -> int:
        """Append a validated row created by transaction ``cts``; returns its index.

        Only valid on delta partitions — the main is immutable between
        merges except for ``dts`` invalidation stamps.
        """
        if self.kind != "delta":
            raise StorageError(f"cannot append to {self.kind} partition {self.name!r}")
        for col in self.schema:
            self._columns[col.name].append(row[col.name])
        self._cts.append(cts)
        self._dts.append(LIVE)
        self.version += 1
        return len(self._cts) - 1

    def invalidate(self, row: int, dts: int) -> None:
        """Stamp row ``row`` as invalidated by transaction ``dts``."""
        if row < 0 or row >= len(self._cts):
            raise StorageError(f"row {row} out of range in partition {self.name!r}")
        if self._dts[row] != LIVE:
            raise StorageError(
                f"row {row} in partition {self.name!r} is already invalidated"
            )
        self._dts[row] = dts
        self.invalidation_epoch += 1
        self.version += 1

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        """Physical rows, including invalidated ones."""
        return len(self._cts)

    def is_physically_empty(self) -> bool:
        """True when the partition holds zero physical rows."""
        return len(self._cts) == 0

    def column(self, name: str) -> ColumnFragment:
        """The fragment of one column (StorageError if unknown)."""
        try:
            return self._columns[name]
        except KeyError:
            raise StorageError(
                f"partition {self.name!r} has no column {name!r}"
            ) from None

    def column_names(self) -> List[str]:
        """Names of the stored columns."""
        return list(self._columns)

    def get_row(self, row: int) -> Dict[str, object]:
        """Decoded values of one row as a dict (diagnostics / merge path)."""
        return {name: frag.value_at(row) for name, frag in self._columns.items()}

    def cts_array(self) -> np.ndarray:
        """Zero-copy view of creation stamps."""
        return self._cts.view()

    def dts_array(self) -> np.ndarray:
        """Zero-copy view of invalidation stamps (0 = live)."""
        return self._dts.view()

    # ------------------------------------------------------------------
    # visibility
    # ------------------------------------------------------------------
    def visible_mask(self, snapshot: int) -> np.ndarray:
        """Boolean mask of rows visible to ``snapshot``.

        A row is visible iff it was created at or before the snapshot and
        not invalidated at or before it.
        """
        cts = self._cts.view()
        dts = self._dts.view()
        return (cts <= snapshot) & ((dts == LIVE) | (dts > snapshot))

    def visibility(self, snapshot: int) -> BitVector:
        """Packed visibility vector for ``snapshot`` (consistent view manager)."""
        return BitVector.from_numpy_bool(self.visible_mask(snapshot))

    def visible_count(self, snapshot: int) -> int:
        """Number of rows visible to ``snapshot``."""
        return int(self.visible_mask(snapshot).sum())

    def visible_rows(self, snapshot: int) -> np.ndarray:
        """Indices of visible rows for ``snapshot``."""
        return np.flatnonzero(self.visible_mask(snapshot))

    def visible_rows_in(self, snapshot: int, start: int, stop: int) -> np.ndarray:
        """Indices of visible rows for ``snapshot`` within ``[start, stop)``.

        The stamp vectors are sliced before the visibility compare, so the
        cost is O(stop - start) regardless of the partition's total size —
        this is what lets delta-memo compensation scan only the rows
        appended since the memo's watermark.
        """
        start = max(0, start)
        stop = min(stop, len(self._cts))
        if start >= stop:
            return np.empty(0, dtype=np.int64)
        cts = self._cts.view()[start:stop]
        dts = self._dts.view()[start:stop]
        mask = (cts <= snapshot) & ((dts == LIVE) | (dts > snapshot))
        return np.flatnonzero(mask) + start

    def min_stamp_after(self, snapshot: int, start: int = 0, stop: Optional[int] = None) -> float:
        """The smallest MVCC stamp strictly greater than ``snapshot`` in rows
        ``[start, stop)``, over both stamp vectors; ``inf`` when none exists.

        The delta memo uses this as its validity *horizon*: a memo anchored
        at snapshot ``S`` stays usable for any reader ``S' < horizon``,
        because no covered row changes visibility anywhere in ``(S, horizon)``.
        """
        stop = len(self._cts) if stop is None else min(stop, len(self._cts))
        start = max(0, start)
        horizon = float("inf")
        if start >= stop:
            return horizon
        for stamps in (self._cts.view()[start:stop], self._dts.view()[start:stop]):
            later = stamps[stamps > snapshot]
            if len(later):
                horizon = min(horizon, float(later.min()))
        return horizon

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def min_value(self, column: str):
        """Dictionary min of a column — the Equation 5 prefilter input.

        Note this is the *dictionary* range, as in the paper: invalidated
        rows keep their values in the dictionary, so pruning stays correct
        (conservative) without visibility checks on the hot path.
        """
        return self.column(column).min_value()

    def max_value(self, column: str):
        """Dictionary max of a column (see :meth:`min_value`)."""
        return self.column(column).max_value()

    def nbytes(self) -> int:
        """Approximate bytes: all column fragments + MVCC stamp vectors."""
        total = sum(frag.nbytes() for frag in self._columns.values())
        return total + self._cts.nbytes() + self._dts.nbytes()

    def nbytes_columns(self, names: Iterable[str]) -> int:
        """Approximate bytes of a subset of columns (Section 6.2 bench)."""
        return sum(self._columns[name].nbytes() for name in names)

    def __repr__(self) -> str:
        return (
            f"Partition({self.name!r}, kind={self.kind}, rows={self.row_count})"
        )
