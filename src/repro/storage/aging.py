"""Hot/cold data-aging rules for multi-partitioned tables (Section 5.4).

The paper considers a *static* hot/cold partitioning: tuples are routed by
age (e.g. fiscal year) into a hot group that receives all new business and a
cold group that is effectively read-only.  The aging rule is a plain callable
``row -> "hot" | "cold"`` attached to the table; this module provides the
rule constructors used by the benchmarks plus the *consistent-aging*
declaration that makes logical pruning of cross-temperature subjoins sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import SchemaError

HOT = "hot"
COLD = "cold"


@dataclass(frozen=True)
class ThresholdAging:
    """The rule ``threshold_aging`` builds: hot iff ``column >= threshold``.

    Being a frozen dataclass (rather than a closure) makes the rule
    *serializable*: :meth:`to_spec` round-trips through WAL/checkpoint
    JSON, which is what lets aged tables be durable.  Arbitrary callables
    remain usable as aging rules but stay memory-only.
    """

    column: str
    hot_if_at_least: object

    def __call__(self, row: Dict[str, object]) -> str:
        value = row.get(self.column)
        if value is None:
            return COLD
        return HOT if value >= self.hot_if_at_least else COLD

    def to_spec(self) -> Dict[str, object]:
        """JSON-serializable description, reversed by :func:`aging_rule_from_spec`."""
        return {
            "kind": "threshold",
            "column": self.column,
            "hot_if_at_least": self.hot_if_at_least,
        }


def aging_rule_spec(rule) -> Optional[Dict[str, object]]:
    """``rule.to_spec()`` if the rule is serializable (and the spec is
    actually JSON-encodable), else None."""
    to_spec = getattr(rule, "to_spec", None)
    if to_spec is None:
        return None
    spec = to_spec()
    try:
        import json

        json.dumps(spec)
    except (TypeError, ValueError):
        return None
    return spec


def aging_rule_from_spec(spec: Optional[Dict[str, object]]):
    """Rebuild a serializable aging rule from its spec (None → None)."""
    if spec is None:
        return None
    kind = spec.get("kind")
    if kind == "threshold":
        return ThresholdAging(spec["column"], spec["hot_if_at_least"])
    raise SchemaError(f"unknown aging rule kind {kind!r}")


def threshold_aging(column: str, hot_if_at_least) -> ThresholdAging:
    """Age rows by comparing ``column`` against a threshold.

    Rows whose value is ``>= hot_if_at_least`` are hot; everything else
    (including NULL, which belongs to no recent business transaction) is
    cold.  Works for INT, DATE-as-ISO-string, and any totally ordered type.
    The returned rule is a serializable :class:`ThresholdAging`, so tables
    using it can live in a durable database.
    """
    return ThresholdAging(column, hot_if_at_least)


def ratio_aging(column: str, values, hot_fraction: float) -> Callable[[Dict[str, object]], str]:
    """Age rows so that approximately ``hot_fraction`` of the given value
    domain is hot — e.g. the paper's 1:3 hot/cold ratio (Fig. 11) uses
    ``hot_fraction=0.25``.

    ``values`` is the sorted domain of ``column``; the threshold is the value
    at the (1 - hot_fraction) quantile.
    """
    ordered = sorted(values)
    if not ordered:
        raise SchemaError("ratio_aging needs a non-empty value domain")
    if not 0.0 < hot_fraction <= 1.0:
        raise SchemaError("hot_fraction must be in (0, 1]")
    cut = int(len(ordered) * (1.0 - hot_fraction))
    cut = min(cut, len(ordered) - 1)
    return threshold_aging(column, ordered[cut])


@dataclass(frozen=True)
class ConsistentAging:
    """Declares that two tables are aged consistently on matching tuples.

    If a header row is hot then all its item rows are hot (and vice versa
    for cold), which is what licenses the *logical* pruning of all subjoins
    between a cold partition of one table and a hot partition of the other
    (Section 5.4: "always empty, given a consistent aging definition").

    The declaration is a promise made by the application; the engine uses it
    for logical pruning and the test-suite checks that the workload
    generators honour it.
    """

    left_table: str
    right_table: str

    def tables(self):
        """The two related table names."""
        return (self.left_table, self.right_table)

    def covers(self, table_a: str, table_b: str) -> bool:
        """True if this declaration relates the two given tables."""
        return {table_a, table_b} == {self.left_table, self.right_table}
