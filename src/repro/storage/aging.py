"""Hot/cold data-aging rules for multi-partitioned tables (Section 5.4).

The paper considers a *static* hot/cold partitioning: tuples are routed by
age (e.g. fiscal year) into a hot group that receives all new business and a
cold group that is effectively read-only.  The aging rule is a plain callable
``row -> "hot" | "cold"`` attached to the table; this module provides the
rule constructors used by the benchmarks plus the *consistent-aging*
declaration that makes logical pruning of cross-temperature subjoins sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import SchemaError

HOT = "hot"
COLD = "cold"


def threshold_aging(column: str, hot_if_at_least) -> Callable[[Dict[str, object]], str]:
    """Age rows by comparing ``column`` against a threshold.

    Rows whose value is ``>= hot_if_at_least`` are hot; everything else
    (including NULL, which belongs to no recent business transaction) is
    cold.  Works for INT, DATE-as-ISO-string, and any totally ordered type.
    """

    def rule(row: Dict[str, object]) -> str:
        value = row.get(column)
        if value is None:
            return COLD
        return HOT if value >= hot_if_at_least else COLD

    return rule


def ratio_aging(column: str, values, hot_fraction: float) -> Callable[[Dict[str, object]], str]:
    """Age rows so that approximately ``hot_fraction`` of the given value
    domain is hot — e.g. the paper's 1:3 hot/cold ratio (Fig. 11) uses
    ``hot_fraction=0.25``.

    ``values`` is the sorted domain of ``column``; the threshold is the value
    at the (1 - hot_fraction) quantile.
    """
    ordered = sorted(values)
    if not ordered:
        raise SchemaError("ratio_aging needs a non-empty value domain")
    if not 0.0 < hot_fraction <= 1.0:
        raise SchemaError("hot_fraction must be in (0, 1]")
    cut = int(len(ordered) * (1.0 - hot_fraction))
    cut = min(cut, len(ordered) - 1)
    return threshold_aging(column, ordered[cut])


@dataclass(frozen=True)
class ConsistentAging:
    """Declares that two tables are aged consistently on matching tuples.

    If a header row is hot then all its item rows are hot (and vice versa
    for cold), which is what licenses the *logical* pruning of all subjoins
    between a cold partition of one table and a hot partition of the other
    (Section 5.4: "always empty, given a consistent aging definition").

    The declaration is a promise made by the application; the engine uses it
    for logical pruning and the test-suite checks that the workload
    generators honour it.
    """

    left_table: str
    right_table: str

    def tables(self):
        """The two related table names."""
        return (self.left_table, self.right_table)

    def covers(self, table_a: str, table_b: str) -> bool:
        """True if this declaration relates the two given tables."""
        return {table_a, table_b} == {self.left_table, self.right_table}
