"""Table schemas: column definitions, SQL-ish types, and key declarations.

A schema describes the logical shape of a table independently of its
physical partitioning.  The object-aware extensions of the paper add plain
``tid`` columns to schemas (Section 5); they are declared here like any other
column and flagged with ``is_tid`` so memory-overhead experiments (Section
6.2) can report their cost separately.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SchemaError


class SqlType(enum.Enum):
    """Supported column types.

    ``DATE`` values are stored as ISO ``YYYY-MM-DD`` strings, which compare
    correctly lexicographically, keeping the dictionary code paths uniform.
    """

    INT = "INT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    DATE = "DATE"

    def validate(self, value) -> None:
        """Raise ``SchemaError`` if ``value`` is not acceptable for this type."""
        if value is None:
            return
        if self is SqlType.INT and not isinstance(value, (int,)) or isinstance(value, bool):
            if not (isinstance(value, int) and not isinstance(value, bool)):
                raise SchemaError(f"expected INT, got {value!r}")
        elif self is SqlType.FLOAT and not isinstance(value, (int, float)):
            raise SchemaError(f"expected FLOAT, got {value!r}")
        elif self is SqlType.TEXT and not isinstance(value, str):
            raise SchemaError(f"expected TEXT, got {value!r}")
        elif self is SqlType.DATE and not isinstance(value, str):
            raise SchemaError(f"expected DATE (ISO string), got {value!r}")

    def coerce(self, value):
        """Normalize a validated value to its canonical Python representation."""
        if value is None:
            return None
        if self is SqlType.FLOAT:
            return float(value)
        return value


@dataclass(frozen=True)
class ColumnDef:
    """Definition of one table column.

    ``is_tid`` marks temporal transaction-id columns added for matching
    dependencies; they carry no business meaning and are excluded from
    ``SELECT *``-style introspection helpers that ask for business columns.
    """

    name: str
    sql_type: SqlType
    nullable: bool = True
    is_tid: bool = False

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")


class Schema:
    """Ordered collection of column definitions plus key metadata.

    Parameters
    ----------
    columns:
        The ordered column definitions.
    primary_key:
        Optional name of the single-column primary key.  The engine keeps a
        primary-key index per table for referential-integrity checks and for
        the matching-dependency ``tid`` lookup at insert time (Section 6.3).
    """

    def __init__(self, columns: Sequence[ColumnDef], primary_key: Optional[str] = None):
        self._columns: List[ColumnDef] = list(columns)
        names = [c.name for c in self._columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._by_name: Dict[str, ColumnDef] = {c.name: c for c in self._columns}
        if primary_key is not None and primary_key not in self._by_name:
            raise SchemaError(f"primary key column {primary_key!r} not in schema")
        self.primary_key = primary_key

    # ------------------------------------------------------------------
    @property
    def columns(self) -> Tuple[ColumnDef, ...]:
        """The ordered column definitions."""
        return tuple(self._columns)

    @property
    def column_names(self) -> List[str]:
        """Column names in schema order."""
        return [c.name for c in self._columns]

    def business_column_names(self) -> List[str]:
        """Column names excluding matching-dependency ``tid`` columns."""
        return [c.name for c in self._columns if not c.is_tid]

    def tid_column_names(self) -> List[str]:
        """Names of the matching-dependency ``tid`` columns."""
        return [c.name for c in self._columns if c.is_tid]

    def has_column(self, name: str) -> bool:
        """True if the schema defines the column."""
        return name in self._by_name

    def column(self, name: str) -> ColumnDef:
        """Definition of one column (SchemaError if unknown)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self):
        return iter(self._columns)

    # ------------------------------------------------------------------
    def validate_row(self, values: Dict[str, object]) -> Dict[str, object]:
        """Validate and normalize a row dict; missing columns become NULL.

        Returns a new dict containing every schema column.  Unknown keys and
        NOT NULL violations raise ``SchemaError``.
        """
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns in row: {sorted(unknown)}")
        row: Dict[str, object] = {}
        for col in self._columns:
            value = values.get(col.name)
            if value is None:
                if not col.nullable:
                    raise SchemaError(f"column {col.name!r} is NOT NULL")
                row[col.name] = None
                continue
            col.sql_type.validate(value)
            row[col.name] = col.sql_type.coerce(value)
        return row

    def extended_with(self, extra: Sequence[ColumnDef]) -> "Schema":
        """Return a new schema with ``extra`` columns appended."""
        return Schema(list(self._columns) + list(extra), primary_key=self.primary_key)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.sql_type.value}" for c in self._columns)
        pk = f", pk={self.primary_key}" if self.primary_key else ""
        return f"Schema({cols}{pk})"


def tid_column(name: str) -> ColumnDef:
    """Convenience constructor for a matching-dependency transaction-id column."""
    return ColumnDef(name, SqlType.INT, nullable=True, is_tid=True)
