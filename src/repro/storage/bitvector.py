"""Packed bit vectors used for record-visibility snapshots.

The consistent view manager (Section 2.2 of the paper) represents the set of
records of a partition visible to a transaction as a bit vector.  The
aggregate cache stores the bit vector of each main partition at entry
creation time, and main compensation is a bit-vector comparison: records
that were visible then but are invisible now have been invalidated and their
contribution must be subtracted from the cached aggregate.

The implementation packs 64 bits per word into a ``numpy`` ``uint64`` array
so the comparisons used on the hot path (``and_not``, ``pop_count``) are
single vectorized operations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

_WORD_BITS = 64


class BitVector:
    """A fixed-length vector of bits backed by a ``uint64`` array.

    Bits are addressed ``0 .. length-1``; out-of-range accesses raise
    ``IndexError``.  All binary operations require equal lengths except where
    documented otherwise (visibility snapshots of the same partition taken at
    different times may differ in length because the partition grew; see
    :meth:`and_not_padded`).
    """

    __slots__ = ("_words", "_length")

    def __init__(self, length: int = 0, fill: bool = False):
        if length < 0:
            raise ValueError("BitVector length must be non-negative")
        self._length = length
        n_words = (length + _WORD_BITS - 1) // _WORD_BITS
        if fill:
            self._words = np.full(n_words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
            self._mask_tail()
        else:
            self._words = np.zeros(n_words, dtype=np.uint64)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_bools(cls, bools: Iterable[bool]) -> "BitVector":
        """Build a vector from an iterable of booleans."""
        arr = np.asarray(list(bools) if not isinstance(bools, np.ndarray) else bools, dtype=bool)
        bv = cls(len(arr))
        if len(arr):
            packed = np.packbits(arr, bitorder="little")
            padded = np.zeros(len(bv._words) * 8, dtype=np.uint8)
            padded[: len(packed)] = packed
            bv._words = padded.view(np.uint64).copy()
        return bv

    @classmethod
    def from_numpy_bool(cls, mask: np.ndarray) -> "BitVector":
        """Build a vector from a numpy boolean mask (no-copy semantics not guaranteed)."""
        return cls.from_bools(mask)

    @classmethod
    def from_indices(cls, length: int, indices: Iterable[int]) -> "BitVector":
        """Build a vector of ``length`` bits with the given ``indices`` set."""
        bv = cls(length)
        bv.set_many(indices)
        return bv

    def copy(self) -> "BitVector":
        """Independent copy."""
        out = BitVector(0)
        out._length = self._length
        out._words = self._words.copy()
        return out

    # ------------------------------------------------------------------
    # single-bit access
    # ------------------------------------------------------------------
    def _check(self, index: int) -> None:
        if index < 0 or index >= self._length:
            raise IndexError(f"bit index {index} out of range [0, {self._length})")

    def set(self, index: int) -> None:
        """Set the bit at ``index`` to 1."""
        self._check(index)
        self._words[index // _WORD_BITS] |= np.uint64(1) << np.uint64(index % _WORD_BITS)

    def clear(self, index: int) -> None:
        """Set the bit at ``index`` to 0."""
        self._check(index)
        self._words[index // _WORD_BITS] &= ~(np.uint64(1) << np.uint64(index % _WORD_BITS))

    def set_many(self, indices) -> None:
        """Set every bit in ``indices`` to 1 (vectorized bulk form of :meth:`set`).

        Accepts any iterable of indices, including numpy integer arrays;
        duplicates are allowed.  The whole batch is range-checked before any
        bit is written, so a failing call mutates nothing.
        """
        if not isinstance(indices, np.ndarray) and not hasattr(indices, "__len__"):
            indices = list(indices)
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        lo, hi = int(idx.min()), int(idx.max())
        if lo < 0 or hi >= self._length:
            bad = lo if lo < 0 else hi
            raise IndexError(f"bit index {bad} out of range [0, {self._length})")
        words = (idx // _WORD_BITS).astype(np.int64)
        bits = np.uint64(1) << (idx % _WORD_BITS).astype(np.uint64)
        # Unbuffered scatter-OR: duplicate word targets fold correctly.
        np.bitwise_or.at(self._words, words, bits)

    def get(self, index: int) -> bool:
        """Return the bit at ``index``."""
        self._check(index)
        word = self._words[index // _WORD_BITS]
        return bool((word >> np.uint64(index % _WORD_BITS)) & np.uint64(1))

    __getitem__ = get

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def pop_count(self) -> int:
        """Number of set bits."""
        if not len(self._words):
            return 0
        return int(np.unpackbits(self._words.view(np.uint8), bitorder="little").sum())

    def any(self) -> bool:
        """True if any bit is set."""
        return bool(np.any(self._words))

    def all(self) -> bool:
        """True if every bit is set."""
        return self.pop_count() == self._length

    # ------------------------------------------------------------------
    # bulk operations
    # ------------------------------------------------------------------
    def _require_same_length(self, other: "BitVector") -> None:
        if self._length != other._length:
            raise ValueError(
                f"BitVector length mismatch: {self._length} != {other._length}"
            )

    def __and__(self, other: "BitVector") -> "BitVector":
        self._require_same_length(other)
        out = self.copy()
        out._words &= other._words
        return out

    def __or__(self, other: "BitVector") -> "BitVector":
        self._require_same_length(other)
        out = self.copy()
        out._words |= other._words
        return out

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._require_same_length(other)
        out = self.copy()
        out._words ^= other._words
        return out

    def __invert__(self) -> "BitVector":
        out = self.copy()
        out._words = ~out._words
        out._mask_tail()
        return out

    def and_not(self, other: "BitVector") -> "BitVector":
        """Return ``self & ~other`` (bits set here but not in ``other``)."""
        self._require_same_length(other)
        out = self.copy()
        out._words &= ~other._words
        out._mask_tail()
        return out

    def and_not_padded(self, other: "BitVector") -> "BitVector":
        """Return ``self & ~other`` treating missing tail bits of ``other`` as 0.

        Used when comparing a stored visibility snapshot against a *longer*
        current snapshot of the same partition: positions beyond the stored
        snapshot's length did not exist at snapshot time.  The result has the
        length of ``self``.
        """
        if other._length > self._length:
            raise ValueError("padded operand must not be longer than self")
        out = self.copy()
        n = len(other._words)
        out._words[:n] &= ~other._words
        out._mask_tail()
        return out

    def extended(self, new_length: int, fill: bool = False) -> "BitVector":
        """Return a copy grown to ``new_length`` bits, new bits = ``fill``."""
        if new_length < self._length:
            raise ValueError("cannot shrink a BitVector via extended()")
        out = BitVector(new_length, fill=fill)
        if fill:
            # keep existing prefix, zero out then re-apply original bits
            n = len(self._words)
            if n:
                # Bits inside the last partial word of self beyond _length must
                # become `fill`; easiest is to rebuild from booleans.
                mask = self.to_numpy()
                grown = np.ones(new_length, dtype=bool)
                grown[: self._length] = mask
                return BitVector.from_bools(grown)
            return out
        n = len(self._words)
        out._words[:n] = self._words
        return out

    def iter_set(self) -> Iterator[int]:
        """Iterate indices of set bits in ascending order."""
        nz = np.flatnonzero(self.to_numpy())
        return iter(nz.tolist())

    def set_indices(self) -> List[int]:
        """Return indices of set bits as a list."""
        return np.flatnonzero(self.to_numpy()).tolist()

    def to_numpy(self) -> np.ndarray:
        """Return the bits as a numpy boolean array of length ``len(self)``."""
        if not self._length:
            return np.zeros(0, dtype=bool)
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return bits[: self._length].astype(bool)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _mask_tail(self) -> None:
        """Zero out the bits beyond the logical length in the last word."""
        rem = self._length % _WORD_BITS
        if rem and len(self._words):
            keep = (np.uint64(1) << np.uint64(rem)) - np.uint64(1)
            self._words[-1] &= keep

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._length == other._length and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self):  # pragma: no cover - BitVectors are mutable
        raise TypeError("BitVector is unhashable (mutable)")

    def __repr__(self) -> str:
        if self._length <= 64:
            bits = "".join("1" if self.get(i) else "0" for i in range(self._length))
            return f"BitVector({bits!r})"
        return f"BitVector(length={self._length}, set={self.pop_count()})"
