"""The top-level database facade.

Wires together the storage catalog, the transaction/visibility layer, the
partition-aware executor, the matching-dependency enforcer, and the
aggregate cache manager into the single object applications talk to:

.. code-block:: python

    from repro import Database, ExecutionStrategy

    db = Database()
    db.create_table("header", [("hid", "INT"), ("year", "INT")], primary_key="hid")
    db.create_table("item", [("iid", "INT"), ("hid", "INT"), ("price", "FLOAT")],
                    primary_key="iid")
    db.add_matching_dependency("header", "hid", "item", "hid")

    db.insert("header", {"hid": 1, "year": 2013})
    db.insert("item", {"iid": 1, "hid": 1, "price": 10.0})
    db.merge()

    result = db.query(
        "SELECT SUM(i.price) AS profit FROM header h, item i WHERE h.hid = i.hid",
        strategy=ExecutionStrategy.CACHED_FULL_PRUNING,
    )
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .concurrency import ReadWriteLock
from .core.admission import AdmissionPolicy
from .core.enforcement import MDEnforcer
from .core.eviction import EvictionPolicy
from .core.manager import AggregateCacheManager, CacheQueryReport
from .core.matching_dependency import MatchingDependency
from .core.strategies import CacheConfig, ExecutionStrategy
from .errors import (
    CatalogError,
    DurabilityError,
    QueryCancelled,
    QueryError,
    QueryTimeout,
)
from .governor import (
    CancelToken,
    GovernorConfig,
    HealthReport,
    ResourceGovernor,
)
from .obs import EngineMetrics
from .obs.trace import QueryTrace
from .query.executor import QueryExecutor
from .query.parallel import ParallelConfig
from .query.query import AggregateQuery
from .query.result import QueryResult
from .query.sql import parse_sql
from .reliability.faults import FaultInjector
from .reliability.recovery import RecoveryStats, recover_database
from .reliability.wal import WriteAheadLog
from .storage.aging import ConsistentAging, aging_rule_spec
from .storage.catalog import Catalog
from .storage.coldstore import (
    demote_partition,
    discard_cold_files,
    reattach_database,
)
from .storage.merge import MergeStats, merge_table
from .storage.schema import ColumnDef, Schema, SqlType, tid_column
from .storage.table import AgingRule, Table
from .txn.consistent_view import ConsistentViewManager
from .txn.manager import SnapshotReader, Transaction, TransactionManager

ColumnsSpec = Union[Schema, Sequence[ColumnDef], Sequence[Tuple[str, str]]]


def _as_schema(columns: ColumnsSpec, primary_key: Optional[str]) -> Schema:
    if isinstance(columns, Schema):
        return columns
    defs: List[ColumnDef] = []
    for column in columns:
        if isinstance(column, ColumnDef):
            defs.append(column)
        else:
            name, type_name = column
            defs.append(ColumnDef(name, SqlType(type_name.upper())))
    return Schema(defs, primary_key=primary_key)


class Database:
    """A columnar database with an aggregate cache.

    Purely in-memory by default.  Pass ``path`` (or use :meth:`open`) for a
    **durable** database: every committed transaction, DDL statement, and
    delta merge is appended to a CRC-checked write-ahead log and fsynced
    before the call returns, merges additionally write an atomic checkpoint,
    and reopening the same path recovers the exact pre-crash state — see
    :mod:`repro.reliability`.

    The facade is safe to share between threads.  A database-level
    readers–writer lock (``db.lock``) lets any number of queries proceed in
    parallel while DML, delta merges, DDL, and checkpointing take exclusive
    ownership; cache admission/eviction bookkeeping during a query is
    guarded by the cache manager's own internal lock.  Pass ``n_workers``
    (or a full :class:`ParallelConfig` as ``parallel``) to additionally
    shard each query's subjoin list across an intra-query worker pool.
    """

    def __init__(
        self,
        cache_config: Optional[CacheConfig] = None,
        admission: Optional[AdmissionPolicy] = None,
        eviction: Optional[EvictionPolicy] = None,
        path=None,
        cold_path=None,
        fault_injector: Optional[FaultInjector] = None,
        n_workers: Optional[int] = None,
        parallel: Optional[ParallelConfig] = None,
        observability: bool = True,
        governor: Optional[Union[ResourceGovernor, GovernorConfig]] = None,
    ):
        if parallel is None and n_workers is not None:
            parallel = ParallelConfig(n_workers=n_workers) if n_workers > 1 else None
        self.lock = ReadWriteLock()
        self.catalog = Catalog()
        self.transactions = TransactionManager()
        self.views = ConsistentViewManager(self.transactions)
        self.executor = QueryExecutor(self.catalog, parallel=parallel)
        config = cache_config if cache_config is not None else CacheConfig()
        self.faults = fault_injector if fault_injector is not None else FaultInjector()
        # ``observability=False`` swaps in the shared no-op registry: every
        # hook stays wired but each increment/observe is an empty call.
        self.obs = EngineMetrics() if observability else EngineMetrics.disabled()
        # The resource governor: pass a ResourceGovernor or a GovernorConfig
        # to override the REPRO_* environment defaults.
        if isinstance(governor, ResourceGovernor):
            self.governor = governor
        else:
            self.governor = ResourceGovernor(governor, obs=self.obs)
        self.cache = AggregateCacheManager(
            self.catalog,
            self.executor,
            self.views,
            config=config,
            admission=admission,
            eviction=eviction,
            obs=self.obs,
            governor=self.governor,
        )
        self.cache.fault_injector = self.faults
        self.enforcer = MDEnforcer(
            self.catalog,
            enforce_referential_integrity=config.enforce_referential_integrity,
        )
        self._thread_state = threading.local()
        self._close_lock = threading.Lock()
        self._closed = False
        self._write_listeners: List[object] = []
        self._merge_listeners: List[object] = []
        # Durability state (all None/inert for in-memory databases).
        self.path: Optional[Path] = None
        self.recovery_stats: Optional[RecoveryStats] = None
        self._wal: Optional[WriteAheadLog] = None
        self._replaying = False
        self._txn_ops: Dict[int, List[Dict]] = {}
        # Transactions whose in-memory effects are visible but whose WAL
        # record could not be written (append failed after retries).  They
        # are redelivered FIFO before the next record, so recovery never
        # silently loses a transaction the live database already served.
        self._wal_backlog: List[Tuple[int, List[Dict], str]] = []
        # Cold-tier root: explicit ``cold_path`` wins (usable by in-memory
        # databases too); durable databases default to ``<path>/cold``.
        self._cold_path = Path(cold_path) if cold_path is not None else None
        if path is not None:
            self._open_durable(path)

    @classmethod
    def open(cls, path, **kwargs) -> "Database":
        """Open (or create) a durable database at ``path``.

        Equivalent to ``Database(path=path, ...)``: if the directory holds a
        previous incarnation's checkpoint/WAL, its state is recovered first
        (``db.recovery_stats`` describes what was replayed).
        """
        return cls(path=path, **kwargs)

    # ------------------------------------------------------------------
    # durability plumbing
    # ------------------------------------------------------------------
    @property
    def is_durable(self) -> bool:
        """True when the database is backed by a WAL directory."""
        return self._wal is not None

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        """The write-ahead log handle (None for in-memory databases)."""
        return self._wal

    def _open_durable(self, path) -> None:
        with self.lock.write():  # recovery is exclusive, like any DDL/DML
            self.path = Path(path)
            self.path.mkdir(parents=True, exist_ok=True)
            self._wal = WriteAheadLog(
                self.path / "wal.jsonl",
                faults=self.faults,
                obs=self.obs,
                retry=self.governor.retry,
            )
            # Exhausted retries open the durability breaker (WAL-degraded:
            # writes rejected, reads served); durable appends feed its
            # success side so a half-open probe can close it again.
            self._wal.on_append_failure = self.governor.record_wal_failure
            self._wal.on_append_success = self.governor.record_wal_success
            self._wal.on_append_retry = self.governor.record_io_retry
            self._replaying = True
            try:
                self.recovery_stats = recover_database(
                    self, self._wal, self._checkpoint_dir()
                )
            finally:
                self._replaying = False
            # Re-attach any cold files the previous incarnation demoted:
            # partitions whose files CRC-match the recovered state come back
            # memory-mapped, torn or stale directories are discarded (the
            # resident main is authoritative either way).
            reattach_database(self)
            self.transactions.finish_hooks.append(self._on_txn_finish)

    def _checkpoint_dir(self) -> Path:
        return self.path / "checkpoints"

    @property
    def cold_dir(self) -> Optional[Path]:
        """Root directory of the memory-mapped cold tier (None = no tiering)."""
        if self._cold_path is not None:
            return self._cold_path
        if self.path is not None:
            return self.path / "cold"
        return None

    def _ensure_writable(self) -> None:
        """Reject mutations while WAL-degraded (durability breaker open).

        Recovery replay is exempt: it re-applies already-durable work and
        must never be blocked by a breaker left over from the previous
        incarnation.  Raises
        :class:`~repro.errors.WriteRejectedError` when degraded; a
        half-open breaker admits the mutation as its probe.
        """
        if self._replaying:
            return
        self.governor.ensure_writes_allowed()

    def _log_ddl(self, record_type: str, data: Dict) -> None:
        if self._wal is not None and not self._replaying:
            self._wal.append(record_type, data)

    def _log_op(self, tid: int, op: Dict) -> None:
        if self._wal is not None and not self._replaying:
            self._txn_ops.setdefault(tid, []).append(op)

    def _on_txn_finish(self, txn: Transaction) -> None:
        """Flush a finished transaction's buffered operations to the WAL.

        Aborted transactions flush too: the engine has no undo, so whatever
        the transaction applied before aborting is part of the in-memory
        state and must survive recovery identically (the record's ``status``
        field preserves the distinction for forensics).

        Row visibility is stamp-based and does not consult the WAL, so by
        the time this hook runs the transaction's rows are already live.
        A failed append therefore must not drop the record on the floor —
        the live database would serve rows recovery cannot reproduce.
        Failed records queue in ``_wal_backlog`` and are redelivered FIFO
        ahead of the next transaction (or at close); a successful
        checkpoint clears the queue instead, because the checkpoint
        already captured their effects and a late append would make
        replay apply them twice.
        """
        ops = self._txn_ops.pop(txn.tid, None)
        if not ops or self._wal is None or self._replaying:
            # Read-only transactions never drain the backlog: reads must
            # stay servable while WAL-degraded, so redelivery only rides
            # transactions that would append a record anyway.
            return
        self._wal_backlog.append((txn.tid, ops, txn.state))
        self._drain_wal_backlog()

    def _drain_wal_backlog(self) -> None:
        """Append queued transaction records in order; stop on failure.

        Raises the :class:`~repro.errors.DurabilityError` of the first
        record that still cannot be written — everything from that record
        on stays queued for the next attempt.
        """
        while self._wal_backlog:
            tid, ops, state = self._wal_backlog[0]
            self._wal.append_transaction(tid, ops, state)
            self._wal_backlog.pop(0)

    def checkpoint(self) -> Optional[Path]:
        """Write an atomic full-state checkpoint (durable databases only).

        Returns the checkpoint path, or None for in-memory databases.
        Called automatically after every :meth:`merge`.
        """
        if self._wal is None:
            return None
        self._ensure_writable()
        from .reliability.checkpoint import write_checkpoint

        def on_retry(attempt, err):
            self.governor.record_io_retry("checkpoint.write")

        with self.lock.write():  # the snapshot must not race ongoing DML
            try:
                path = write_checkpoint(
                    self,
                    self._checkpoint_dir(),
                    self._wal.stats.last_lsn,
                    faults=self.faults,
                    retry=self.governor.retry,
                    on_retry=on_retry,
                )
            except OSError as err:
                self.governor.record_wal_failure(err)
                raise DurabilityError(
                    f"checkpoint write failed after "
                    f"{self.governor.retry.attempts} attempt(s): {err}"
                ) from err
            self.governor.record_wal_success()
            self._wal.stats.checkpoints_written += 1
            # Any transaction still awaiting its WAL record is durable now:
            # the checkpoint captured its in-memory effects, and replay
            # starts past this LSN.  Appending the record later would
            # re-apply those operations on top of the checkpoint image.
            self._wal_backlog.clear()
            return path

    def close(self) -> None:
        """Shut the database down (idempotent, thread-safe).

        Exactly one caller performs the shutdown; concurrent and repeated
        calls return immediately.  The closer takes the database write
        lock first, so every in-flight query drains before the executor
        pool stops and the WAL handle is released — closing under
        concurrent readers never yanks resources out from under them.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        with self.lock.write():  # drain in-flight readers before teardown
            self.executor.close()
            if self._wal is not None:
                try:
                    # Last chance for transactions whose WAL append failed
                    # earlier: a clean close must not forget work the live
                    # database already served.
                    self._drain_wal_backlog()
                except DurabilityError:
                    pass  # still failing; closing must not raise
                self._wal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def recover(self) -> "Database":
        """Abandon this instance and return a freshly recovered one.

        The crash-recovery idiom: after a (simulated or real) failure the
        live object may hold state that never reached the log — close it
        and rebuild only what the checkpoint + WAL prove
        (``recovery_stats`` on the returned instance says what that was).
        Constructor arguments such as a custom cache config are not
        carried over; reopen via :meth:`open` to pass them again.
        """
        if self.path is None:
            raise DurabilityError("an in-memory database has nothing to recover")
        self.close()
        return type(self).open(self.path)

    # ------------------------------------------------------------------
    # write listeners (used by the materialized-view baselines)
    # ------------------------------------------------------------------
    def register_write_listener(self, listener) -> None:
        """Register an observer with ``on_insert(table, row, tid)``,
        ``on_update(table, old_row, new_row, tid)``, and
        ``on_delete(table, old_row, tid)`` callbacks.  The eager/lazy
        materialized-view baselines of Section 6.1 subscribe here."""
        self._write_listeners.append(listener)

    def unregister_write_listener(self, listener) -> None:
        """Remove a previously registered write listener."""
        self._write_listeners.remove(listener)

    def register_merge_listener(self, listener) -> None:
        """Additional :class:`~repro.storage.merge.MergeListener`s notified
        on every ``merge`` (the aggregate cache is always first)."""
        self._merge_listeners.append(listener)

    def unregister_merge_listener(self, listener) -> None:
        """Remove a previously registered merge listener."""
        self._merge_listeners.remove(listener)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: ColumnsSpec,
        primary_key: Optional[str] = None,
        aging_rule: Optional[AgingRule] = None,
        separate_update_delta: bool = False,
    ) -> Table:
        """Create a table.  ``columns`` may be a Schema, ColumnDefs, or
        ``(name, "INT"|"FLOAT"|"TEXT"|"DATE")`` tuples.

        ``separate_update_delta=True`` gives every partition group a third,
        update-only delta partition (the paper's Section-8 "negative delta"
        direction): updates no longer pollute the insert delta's tid ranges,
        keeping main x insert-delta subjoins dynamically prunable under
        update traffic.
        """
        self._ensure_writable()
        schema = _as_schema(columns, primary_key)
        if (
            aging_rule is not None
            and self._wal is not None
            and aging_rule_spec(aging_rule) is None
        ):
            raise DurabilityError(
                f"table {name!r}: the aging rule is an arbitrary Python "
                "callable and cannot be persisted; durable hot/cold tables "
                "need a serializable rule (threshold_aging / ratio_aging)"
            )
        with self.lock.write():
            return self._create_table_locked(
                name, schema, aging_rule, separate_update_delta
            )

    def _create_table_locked(
        self, name, schema, aging_rule, separate_update_delta
    ) -> Table:
        table = self.catalog.create_table(
            name,
            schema,
            aging_rule=aging_rule,
            separate_update_delta=separate_update_delta,
        )
        self._log_ddl(
            "create_table",
            {
                "name": name,
                "primary_key": schema.primary_key,
                "aging": aging_rule_spec(aging_rule) if aging_rule else None,
                "separate_update_delta": separate_update_delta,
                "columns": [
                    {
                        "name": column.name,
                        "type": column.sql_type.value,
                        "nullable": column.nullable,
                        "is_tid": column.is_tid,
                    }
                    for column in schema
                ],
            },
        )
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table, evicting only the cache entries that reference it."""
        self._ensure_writable()
        with self.lock.write():
            self.catalog.drop_table(name)
            self.cache.evict_for_table(name)
            if self.cold_dir is not None:
                discard_cold_files(self.cold_dir, name)
            self._log_ddl("drop_table", {"name": name})

    def add_matching_dependency(
        self,
        parent_table: str,
        parent_key: str,
        child_table: str,
        child_fk: str,
        tid_column_name: Optional[str] = None,
    ) -> MatchingDependency:
        """Declare and enforce an MD (Equation 6); installs tid columns.

        The tid column (default name ``tid_<parent_table>``) is appended to
        both schemas if missing — which requires both tables to still be
        empty.  From this call on every insert is stamped, so the MD holds
        for all data, which is what keeps pruning sound.
        """
        self._ensure_writable()
        name = tid_column_name or f"tid_{parent_table}"
        md = MatchingDependency(parent_table, parent_key, child_table, child_fk, name)
        with self.lock.write():
            return self._add_md_locked(md)

    def _add_md_locked(self, md: MatchingDependency) -> MatchingDependency:
        parent_table, child_table = md.parent_table, md.child_table
        parent_key, child_fk = md.parent_key, md.child_fk
        name = md.tid_column
        for table_name in (parent_table, child_table):
            table = self.catalog.table(table_name)
            if not table.schema.has_column(name):
                table.extend_schema([tid_column(name)])
        self.enforcer.register(md)
        self.cache.register_matching_dependency(md)
        self._log_ddl(
            "add_md",
            {
                "parent_table": parent_table,
                "parent_key": parent_key,
                "child_table": child_table,
                "child_fk": child_fk,
                "tid_column": name,
            },
        )
        return md

    def declare_consistent_aging(self, left_table: str, right_table: str) -> ConsistentAging:
        """Promise that matching tuples of the two tables age together
        (Section 5.4), enabling logical pruning of cross-temperature
        subjoins."""
        self._ensure_writable()
        with self.lock.write():
            for name in (left_table, right_table):
                self.catalog.table(name)  # existence check
            declaration = ConsistentAging(left_table, right_table)
            self.cache.register_consistent_aging(declaration)
            self._log_ddl(
                "consistent_aging", {"left": left_table, "right": right_table}
            )
            return declaration

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        """Start an explicit transaction (auto-commit otherwise)."""
        return self.transactions.begin()

    def _txn_or_begin(self, txn: Optional[Transaction]) -> Tuple[Transaction, bool]:
        if txn is not None:
            txn.require_active()
            return txn, False
        return self.transactions.begin(), True

    def _abort_own(self, transaction: Transaction, own: bool) -> None:
        """Close an auto-begun transaction whose body raised.

        Without this, an exception escaping e.g. ``insert`` would leave the
        auto-begun transaction active forever — never committed, never
        aborted, its finish hooks (WAL flush) never run.
        """
        if own and transaction.is_active:
            transaction.abort()

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def insert(
        self,
        table_name: str,
        row: Dict[str, object],
        txn: Optional[Transaction] = None,
    ):
        """Insert one row; stamps MD tid columns through the enforcer."""
        self._ensure_writable()
        transaction, own = self._txn_or_begin(txn)
        with self.lock.write():
            try:
                table = self.catalog.table(table_name)
                stamped = self.enforcer.stamp(table_name, row, transaction.tid)
                locator = table.insert(stamped, transaction.tid)
                if self._wal is not None:
                    self._log_op(
                        transaction.tid,
                        {
                            "op": "insert",
                            "table": table_name,
                            # The *stamped* row: replay applies it at the table
                            # level and must not re-run MD enforcement.
                            "row": stamped,
                            "tid": transaction.tid,
                        },
                    )
                if self._write_listeners:
                    inserted = table.partition(locator.partition).get_row(locator.row)
                    for listener in self._write_listeners:
                        listener.on_insert(table_name, inserted, transaction.tid)
            except BaseException:
                self._abort_own(transaction, own)
                raise
            if own:
                transaction.commit()
            return locator

    def insert_many(
        self,
        table_name: str,
        rows: Iterable[Dict[str, object]],
        txn: Optional[Transaction] = None,
    ) -> int:
        """Insert several rows in one transaction; returns the count."""
        self._ensure_writable()
        transaction, own = self._txn_or_begin(txn)
        with self.lock.write():  # one exclusive span for the whole batch
            try:
                count = 0
                for row in rows:
                    self.insert(table_name, row, txn=transaction)
                    count += 1
            except BaseException:
                self._abort_own(transaction, own)
                raise
            if own:
                transaction.commit()
            return count

    def insert_business_object(
        self,
        header_table: str,
        header_row: Dict[str, object],
        item_table: str,
        item_rows: Iterable[Dict[str, object]],
        txn: Optional[Transaction] = None,
    ) -> int:
        """Persist a header and its items in a single transaction — the
        enterprise-application insert pattern of Section 3.2.  Returns the
        number of item rows inserted."""
        self._ensure_writable()
        transaction, own = self._txn_or_begin(txn)
        with self.lock.write():  # header + items swap in as one unit
            try:
                self.insert(header_table, header_row, txn=transaction)
                count = 0
                for item_row in item_rows:
                    self.insert(item_table, item_row, txn=transaction)
                    count += 1
            except BaseException:
                self._abort_own(transaction, own)
                raise
            if own:
                transaction.commit()
            return count

    def update(
        self,
        table_name: str,
        pk_value,
        changes: Dict[str, object],
        txn: Optional[Transaction] = None,
    ) -> None:
        """Update one row by primary key (new version goes to the delta)."""
        self._ensure_writable()
        transaction, own = self._txn_or_begin(txn)
        with self.lock.write():
            self._update_locked(table_name, pk_value, changes, transaction, own)

    def _update_locked(self, table_name, pk_value, changes, transaction, own) -> None:
        try:
            table = self.catalog.table(table_name)
            old_row = table.get_row(pk_value) if self._write_listeners else None
            locator = table.update(pk_value, changes, transaction.tid)
            if self._wal is not None:
                self._log_op(
                    transaction.tid,
                    {
                        "op": "update",
                        "table": table_name,
                        "pk": pk_value,
                        "changes": dict(changes),
                        "tid": transaction.tid,
                    },
                )
            if self._write_listeners:
                new_row = table.partition(locator.partition).get_row(locator.row)
                for listener in self._write_listeners:
                    listener.on_update(table_name, old_row, new_row, transaction.tid)
        except BaseException:
            self._abort_own(transaction, own)
            raise
        if own:
            transaction.commit()

    def delete(
        self,
        table_name: str,
        pk_value,
        txn: Optional[Transaction] = None,
    ) -> None:
        """Delete one row by primary key (invalidation only)."""
        self._ensure_writable()
        transaction, own = self._txn_or_begin(txn)
        with self.lock.write():
            self._delete_locked(table_name, pk_value, transaction, own)

    def _delete_locked(self, table_name, pk_value, transaction, own) -> None:
        try:
            table = self.catalog.table(table_name)
            old_row = table.get_row(pk_value) if self._write_listeners else None
            table.delete(pk_value, transaction.tid)
            if self._wal is not None:
                self._log_op(
                    transaction.tid,
                    {
                        "op": "delete",
                        "table": table_name,
                        "pk": pk_value,
                        "tid": transaction.tid,
                    },
                )
            if self._write_listeners:
                for listener in self._write_listeners:
                    listener.on_delete(table_name, old_row, transaction.tid)
        except BaseException:
            self._abort_own(transaction, own)
            raise
        if own:
            transaction.commit()

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def merge(
        self,
        table_name: Optional[str] = None,
        group_name: Optional[str] = None,
        keep_history: bool = False,
    ) -> List[MergeStats]:
        """Run the delta merge — for one table or all of them — with the
        aggregate cache attached as maintenance listener.

        Merging related tables in one call is the merge-synchronization of
        Section 5.2: their deltas empty together, maximizing pruning.

        Durable databases log each table's merge to the WAL *after* its swap
        (a merge is durable exactly when it is observable) and write a fresh
        checkpoint once all tables merged, keeping the recovery replay
        suffix short.  A crash anywhere in between recovers cleanly: merges
        not yet logged are simply re-run from the pre-merge state — they
        change the physical layout, never query results.
        """
        self._ensure_writable()
        with self.lock.write():  # partition swap excludes all readers
            tables = (
                [self.catalog.table(table_name)]
                if table_name is not None
                else self.catalog.tables()
            )
            snapshot = self.transactions.global_snapshot()
            stats: List[MergeStats] = []
            for table in tables:
                stats.append(
                    merge_table(
                        table,
                        snapshot,
                        listeners=[self.cache] + self._merge_listeners,
                        group_name=group_name,
                        keep_history=keep_history,
                        faults=self.faults,
                        obs=self.obs,
                    )
                )
                if self._wal is not None and not self._replaying:
                    self._wal.append_merge(
                        table.name, group_name, snapshot, keep_history
                    )
            if self._wal is not None and not self._replaying:
                self.checkpoint()
            return stats

    def age_out(self, table_name: Optional[str] = None) -> List[Tuple[str, str]]:
        """Demote cold-group mains to the memory-mapped cold tier.

        For every aged table (or just ``table_name``), the cold group's
        main partition is written to ``cold_dir`` — code vectors and MVCC
        stamps as flat memmap files, dictionaries as lazily loaded JSON —
        and its in-memory backing swapped onto the files.  Partition and
        fragment object identity is preserved and no version is bumped:
        demotion changes the physical layout, never the data, so cached
        plans and delta memos stay valid.  The resident synopsis keeps
        answering prune checks without disk I/O.

        Typically called after :meth:`merge` (a merge rebuilds mains
        resident, undoing any previous demotion).  Idempotent; returns the
        ``(table, partition)`` pairs demoted by this call.
        """
        cold_dir = self.cold_dir
        if cold_dir is None:
            raise DurabilityError(
                "age_out() needs a cold directory: open the database with "
                "path=... or pass cold_path=..."
            )
        self._ensure_writable()
        demoted: List[Tuple[str, str]] = []
        with self.lock.write():  # backing swap excludes all readers
            tables = (
                [self.catalog.table(table_name)]
                if table_name is not None
                else self.catalog.tables()
            )
            for table in tables:
                if not table.is_aged():
                    continue
                partition = table.group("cold").main
                if partition.row_count == 0 or partition.storage_tier == "mapped":
                    continue
                demote_partition(table.name, partition, cold_dir, faults=self.faults)
                self.obs.storage_demotions.inc()
                demoted.append((table.name, partition.name))
        return demoted

    def auto_merge(self, advisor=None) -> List[MergeStats]:
        """Consult a merge advisor and merge the recommended tables.

        Tables connected by matching dependencies merge together, so the
        merges are synchronized (Section 5.2).  Returns the merge stats
        (empty list = nothing recommended).
        """
        from .core.merge_advisor import MergeAdvisor

        advisor = advisor if advisor is not None else MergeAdvisor()
        with self.lock.write():  # advise + merge atomically vs. writers
            recommendation = advisor.recommend(self)
            stats: List[MergeStats] = []
            for name in recommendation.tables:
                stats.extend(self.merge(name))
            return stats

    def refresh_cache(self, advisor=None, max_entries=None):
        """Idle hook: proactively advance or rebuild cache-entry delta
        memos per the cardinality-based refresh policy (see
        :func:`repro.core.maintenance.plan_cache_refresh`), so steady-state
        queries hit already-advanced memos and a pre-populated subjoin
        recycler instead of compensating on the critical path.

        Runs under the shared read lock — refreshes are snapshot reads
        plus compare-and-swap memo installs, exactly like query-time
        compensation, so they coexist with concurrent readers and yield
        to writers.  Returns the routed decision list.
        """
        from .core.merge_advisor import MergeAdvisor

        advisor = advisor if advisor is not None else MergeAdvisor()
        with self.lock.read():
            snapshot = self.transactions.global_snapshot()
            recommendation = advisor.recommend_refresh(self, snapshot)
            return self.cache.refresh_entries(
                snapshot,
                decisions=recommendation.decisions,
                max_entries=max_entries,
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def parse(self, sql: str) -> AggregateQuery:
        """Parse SQL text into an :class:`AggregateQuery`."""
        return parse_sql(sql)

    @property
    def last_report(self) -> Optional[CacheQueryReport]:
        """The :class:`CacheQueryReport` of *this thread's* most recent query.

        Thread-local: concurrent queries on a shared ``Database`` each see
        their own report, never another thread's.  Prefer ``result.report``
        — the report travels with the result it describes — when the result
        object is in hand.
        """
        return getattr(self._thread_state, "report", None)

    @last_report.setter
    def last_report(self, report: Optional[CacheQueryReport]) -> None:
        self._thread_state.report = report

    def query(
        self,
        query: Union[str, AggregateQuery],
        strategy: Optional[ExecutionStrategy] = None,
        txn: Optional[Transaction] = None,
        as_of: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        cancel: Optional[CancelToken] = None,
        star_join_tables=None,
    ) -> QueryResult:
        """Answer an aggregate query (SQL text or query object).

        ``star_join_tables`` overrides star-join variant-reduction
        detection for this statement: an iterable (or comma-separated
        string) of table/alias names restricts exclusion candidates to
        exactly those names, ``()`` disables exclusion, and ``None``
        (default) detects automatically (see :mod:`repro.plan.star_join`).

        ``as_of`` pins the read to a past transaction id (time travel); it
        sees whatever that snapshot saw, provided history was retained
        (``merge(keep_history=True)`` keeps invalidated rows).  The
        per-query :class:`CacheQueryReport` rides on the returned result
        (``result.report``); ``db.last_report`` keeps a thread-local copy.

        ``timeout_ms`` bounds the query's wall-clock time (default from
        ``REPRO_QUERY_TIMEOUT_MS``; explicit wins): the deadline is
        checked cooperatively at every subjoin boundary and an expired
        query aborts with :class:`~repro.errors.QueryTimeout`, leaving
        the cache, delta memos, and transaction manager exactly as if the
        query had never run.  ``cancel`` accepts a
        :class:`~repro.governor.CancelToken` another thread may trip
        (:class:`~repro.errors.QueryCancelled`).
        """
        return self._run_query(
            query, strategy, txn, as_of, trace=None,
            timeout_ms=timeout_ms, cancel=cancel,
            star_join_tables=star_join_tables,
        )

    def explain_analyze(
        self,
        query: Union[str, AggregateQuery],
        strategy: Optional[ExecutionStrategy] = None,
        txn: Optional[Transaction] = None,
        as_of: Optional[int] = None,
        timeout_ms: Optional[float] = None,
        cancel: Optional[CancelToken] = None,
        star_join_tables=None,
    ) -> QueryTrace:
        """Run the query for real and return its structured trace.

        Unlike :meth:`explain` (a dry run), the query executes end to end;
        the returned :class:`~repro.obs.QueryTrace` is a tree of timed
        spans — bind, per-combination cache lookup (entry build / main
        compensation), and one span per delta-compensation subjoin with its
        partition assignment and either its prune reason or the rows it
        scanned.  ``trace.result`` and ``trace.report`` carry the query's
        outcome; ``print(trace.render())`` gives the EXPLAIN ANALYZE view.
        """
        sql_text = query if isinstance(query, str) else None
        trace = QueryTrace(sql=sql_text)
        result = self._run_query(
            query, strategy, txn, as_of, trace=trace,
            timeout_ms=timeout_ms, cancel=cancel,
            star_join_tables=star_join_tables,
        )
        trace.finish()
        trace.result = result
        trace.report = result.report
        result.trace = trace
        return trace

    def _run_query(
        self,
        query: Union[str, AggregateQuery],
        strategy: Optional[ExecutionStrategy],
        txn: Optional[Transaction],
        as_of: Optional[int],
        trace: Optional[QueryTrace],
        timeout_ms: Optional[float] = None,
        cancel: Optional[CancelToken] = None,
        star_join_tables=None,
    ) -> QueryResult:
        # Raw SQL passes through untouched: the manager's plan cache hits on
        # the literal text, skipping parse *and* bind for repeated
        # statements.  The bound query comes back on the report's plan.
        token = self.governor.query_token(timeout_ms=timeout_ms, cancel=cancel)
        try:
            if as_of is not None:
                if txn is not None:
                    raise QueryError("pass either txn or as_of, not both")
                reader = SnapshotReader(as_of)
                with self.lock.read():
                    grouped, report = self.cache.execute(
                        query, reader, strategy=strategy, trace=trace,
                        cancel=token, star_join_tables=star_join_tables,
                    )
                return self._finish_query(report.plan.query, grouped, report)
            transaction, own = self._txn_or_begin(txn)
            with self.lock.read():
                try:
                    grouped, report = self.cache.execute(
                        query, transaction, strategy=strategy, trace=trace,
                        cancel=token, star_join_tables=star_join_tables,
                    )
                except BaseException:
                    # Aborting the auto-begun transaction here (inside the
                    # ``with``) means a timed-out query leaves no active
                    # transaction and no held read lock behind.
                    self._abort_own(transaction, own)
                    raise
                if own:
                    transaction.commit()
            return self._finish_query(report.plan.query, grouped, report)
        except QueryTimeout:
            self.governor.record_timeout()
            raise
        except QueryCancelled:
            self.governor.record_cancellation()
            raise

    def _finish_query(self, query, grouped, report) -> QueryResult:
        result = QueryResult.from_grouped(query, grouped)
        result.report = report
        self.last_report = report
        return result

    def explain(
        self,
        query: Union[str, AggregateQuery],
        strategy: Optional[ExecutionStrategy] = None,
        star_join_tables=None,
    ) -> str:
        """EXPLAIN: how the cache would answer the query, without running it.

        Shows the cached all-main combinations (hit/miss), the star-join
        exclusions with a reason per table (when variant reduction
        engages), and the fate of every delta-compensation subjoin —
        evaluated, or pruned by which mechanism, with any derived pushdown
        filters.  Rendered from the same (possibly cached) physical plan
        :meth:`query` would run.
        """
        with self.lock.read():
            return self.cache.explain(query, strategy, star_join_tables).render()

    def export_csv(self, table_name: str, path, include_tid_columns: bool = False) -> int:
        """Write the table's visible rows to a CSV file; returns the count."""
        from .storage.csvio import export_csv

        with self.lock.read():
            return export_csv(self, table_name, path, include_tid_columns)

    def import_csv(self, table_name: str, path, batch_size: int = 1000) -> int:
        """Load rows from a CSV file through the normal insert path."""
        from .storage.csvio import import_csv

        return import_csv(self, table_name, path, batch_size=batch_size)

    def statistics(self):
        """A monitoring snapshot (storage / cache / enforcement); see
        :mod:`repro.monitor`."""
        from .monitor import collect_statistics

        with self.lock.read():
            return collect_statistics(self)

    def health(self) -> HealthReport:
        """The governor's health snapshot: overall state, active degraded
        modes (``wal_degraded`` / ``cache_degraded``), breaker details,
        abort/retry/shed counters, and memory-budget occupancy.  Served
        without the database lock so it works even while writers stall."""
        return self.governor.health(tracked_bytes=self.cache.tracked_bytes())

    def export_metrics(self) -> str:
        """The metrics registry in Prometheus text exposition format.

        Refreshes the cache gauges (entry count, value bytes, profit) from
        the live entry map first, so a scrape always reflects the current
        state.  Returns ``""`` when observability is disabled.
        """
        self.cache.refresh_obs_gauges()
        return self.obs.registry.render_prometheus()

    def metrics_snapshot(self) -> Dict[str, float]:
        """Every metric sample as a flat ``{name{labels}: value}`` dict."""
        self.cache.refresh_obs_gauges()
        return self.obs.registry.snapshot()

    @property
    def plan_cache(self):
        """The cache manager's :class:`~repro.plan.cache.PlanCache`."""
        return self.cache.plan_cache

    def table(self, name: str) -> Table:
        """The live :class:`Table` object by name."""
        return self.catalog.table(name)

    def __repr__(self) -> str:
        return (
            f"Database(tables={self.catalog.table_names()}, "
            f"cache_entries={self.cache.entry_count()})"
        )
