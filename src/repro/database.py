"""The top-level database facade.

Wires together the storage catalog, the transaction/visibility layer, the
partition-aware executor, the matching-dependency enforcer, and the
aggregate cache manager into the single object applications talk to:

.. code-block:: python

    from repro import Database, ExecutionStrategy

    db = Database()
    db.create_table("header", [("hid", "INT"), ("year", "INT")], primary_key="hid")
    db.create_table("item", [("iid", "INT"), ("hid", "INT"), ("price", "FLOAT")],
                    primary_key="iid")
    db.add_matching_dependency("header", "hid", "item", "hid")

    db.insert("header", {"hid": 1, "year": 2013})
    db.insert("item", {"iid": 1, "hid": 1, "price": 10.0})
    db.merge()

    result = db.query(
        "SELECT SUM(i.price) AS profit FROM header h, item i WHERE h.hid = i.hid",
        strategy=ExecutionStrategy.CACHED_FULL_PRUNING,
    )
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .core.admission import AdmissionPolicy
from .core.enforcement import MDEnforcer
from .core.eviction import EvictionPolicy
from .core.manager import AggregateCacheManager, CacheQueryReport
from .core.matching_dependency import MatchingDependency
from .core.strategies import CacheConfig, ExecutionStrategy
from .errors import CatalogError, QueryError
from .query.executor import QueryExecutor
from .query.query import AggregateQuery
from .query.result import QueryResult
from .query.sql import parse_sql
from .storage.aging import ConsistentAging
from .storage.catalog import Catalog
from .storage.merge import MergeStats, merge_table
from .storage.schema import ColumnDef, Schema, SqlType, tid_column
from .storage.table import AgingRule, Table
from .txn.consistent_view import ConsistentViewManager
from .txn.manager import SnapshotReader, Transaction, TransactionManager

ColumnsSpec = Union[Schema, Sequence[ColumnDef], Sequence[Tuple[str, str]]]


def _as_schema(columns: ColumnsSpec, primary_key: Optional[str]) -> Schema:
    if isinstance(columns, Schema):
        return columns
    defs: List[ColumnDef] = []
    for column in columns:
        if isinstance(column, ColumnDef):
            defs.append(column)
        else:
            name, type_name = column
            defs.append(ColumnDef(name, SqlType(type_name.upper())))
    return Schema(defs, primary_key=primary_key)


class Database:
    """An in-memory columnar database with an aggregate cache."""

    def __init__(
        self,
        cache_config: Optional[CacheConfig] = None,
        admission: Optional[AdmissionPolicy] = None,
        eviction: Optional[EvictionPolicy] = None,
    ):
        self.catalog = Catalog()
        self.transactions = TransactionManager()
        self.views = ConsistentViewManager(self.transactions)
        self.executor = QueryExecutor(self.catalog)
        config = cache_config if cache_config is not None else CacheConfig()
        self.cache = AggregateCacheManager(
            self.catalog,
            self.executor,
            self.views,
            config=config,
            admission=admission,
            eviction=eviction,
        )
        self.enforcer = MDEnforcer(
            self.catalog,
            enforce_referential_integrity=config.enforce_referential_integrity,
        )
        self.last_report: Optional[CacheQueryReport] = None
        self._write_listeners: List[object] = []
        self._merge_listeners: List[object] = []

    # ------------------------------------------------------------------
    # write listeners (used by the materialized-view baselines)
    # ------------------------------------------------------------------
    def register_write_listener(self, listener) -> None:
        """Register an observer with ``on_insert(table, row, tid)``,
        ``on_update(table, old_row, new_row, tid)``, and
        ``on_delete(table, old_row, tid)`` callbacks.  The eager/lazy
        materialized-view baselines of Section 6.1 subscribe here."""
        self._write_listeners.append(listener)

    def unregister_write_listener(self, listener) -> None:
        """Remove a previously registered write listener."""
        self._write_listeners.remove(listener)

    def register_merge_listener(self, listener) -> None:
        """Additional :class:`~repro.storage.merge.MergeListener`s notified
        on every ``merge`` (the aggregate cache is always first)."""
        self._merge_listeners.append(listener)

    def unregister_merge_listener(self, listener) -> None:
        """Remove a previously registered merge listener."""
        self._merge_listeners.remove(listener)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: ColumnsSpec,
        primary_key: Optional[str] = None,
        aging_rule: Optional[AgingRule] = None,
        separate_update_delta: bool = False,
    ) -> Table:
        """Create a table.  ``columns`` may be a Schema, ColumnDefs, or
        ``(name, "INT"|"FLOAT"|"TEXT"|"DATE")`` tuples.

        ``separate_update_delta=True`` gives every partition group a third,
        update-only delta partition (the paper's Section-8 "negative delta"
        direction): updates no longer pollute the insert delta's tid ranges,
        keeping main x insert-delta subjoins dynamically prunable under
        update traffic.
        """
        schema = _as_schema(columns, primary_key)
        return self.catalog.create_table(
            name,
            schema,
            aging_rule=aging_rule,
            separate_update_delta=separate_update_delta,
        )

    def drop_table(self, name: str) -> None:
        """Drop a table and clear the aggregate cache (entries may reference it)."""
        self.catalog.drop_table(name)
        self.cache.clear()  # entries may reference the dropped table

    def add_matching_dependency(
        self,
        parent_table: str,
        parent_key: str,
        child_table: str,
        child_fk: str,
        tid_column_name: Optional[str] = None,
    ) -> MatchingDependency:
        """Declare and enforce an MD (Equation 6); installs tid columns.

        The tid column (default name ``tid_<parent_table>``) is appended to
        both schemas if missing — which requires both tables to still be
        empty.  From this call on every insert is stamped, so the MD holds
        for all data, which is what keeps pruning sound.
        """
        name = tid_column_name or f"tid_{parent_table}"
        md = MatchingDependency(parent_table, parent_key, child_table, child_fk, name)
        for table_name in (parent_table, child_table):
            table = self.catalog.table(table_name)
            if not table.schema.has_column(name):
                table.extend_schema([tid_column(name)])
        self.enforcer.register(md)
        self.cache.register_matching_dependency(md)
        return md

    def declare_consistent_aging(self, left_table: str, right_table: str) -> ConsistentAging:
        """Promise that matching tuples of the two tables age together
        (Section 5.4), enabling logical pruning of cross-temperature
        subjoins."""
        for name in (left_table, right_table):
            self.catalog.table(name)  # existence check
        declaration = ConsistentAging(left_table, right_table)
        self.cache.register_consistent_aging(declaration)
        return declaration

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        """Start an explicit transaction (auto-commit otherwise)."""
        return self.transactions.begin()

    def _txn_or_begin(self, txn: Optional[Transaction]) -> Tuple[Transaction, bool]:
        if txn is not None:
            txn.require_active()
            return txn, False
        return self.transactions.begin(), True

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def insert(
        self,
        table_name: str,
        row: Dict[str, object],
        txn: Optional[Transaction] = None,
    ):
        """Insert one row; stamps MD tid columns through the enforcer."""
        transaction, own = self._txn_or_begin(txn)
        table = self.catalog.table(table_name)
        stamped = self.enforcer.stamp(table_name, row, transaction.tid)
        locator = table.insert(stamped, transaction.tid)
        if self._write_listeners:
            inserted = table.partition(locator.partition).get_row(locator.row)
            for listener in self._write_listeners:
                listener.on_insert(table_name, inserted, transaction.tid)
        if own:
            transaction.commit()
        return locator

    def insert_many(
        self,
        table_name: str,
        rows: Iterable[Dict[str, object]],
        txn: Optional[Transaction] = None,
    ) -> int:
        """Insert several rows in one transaction; returns the count."""
        transaction, own = self._txn_or_begin(txn)
        count = 0
        for row in rows:
            self.insert(table_name, row, txn=transaction)
            count += 1
        if own:
            transaction.commit()
        return count

    def insert_business_object(
        self,
        header_table: str,
        header_row: Dict[str, object],
        item_table: str,
        item_rows: Iterable[Dict[str, object]],
        txn: Optional[Transaction] = None,
    ) -> int:
        """Persist a header and its items in a single transaction — the
        enterprise-application insert pattern of Section 3.2.  Returns the
        number of item rows inserted."""
        transaction, own = self._txn_or_begin(txn)
        self.insert(header_table, header_row, txn=transaction)
        count = 0
        for item_row in item_rows:
            self.insert(item_table, item_row, txn=transaction)
            count += 1
        if own:
            transaction.commit()
        return count

    def update(
        self,
        table_name: str,
        pk_value,
        changes: Dict[str, object],
        txn: Optional[Transaction] = None,
    ) -> None:
        """Update one row by primary key (new version goes to the delta)."""
        transaction, own = self._txn_or_begin(txn)
        table = self.catalog.table(table_name)
        old_row = table.get_row(pk_value) if self._write_listeners else None
        locator = table.update(pk_value, changes, transaction.tid)
        if self._write_listeners:
            new_row = table.partition(locator.partition).get_row(locator.row)
            for listener in self._write_listeners:
                listener.on_update(table_name, old_row, new_row, transaction.tid)
        if own:
            transaction.commit()

    def delete(
        self,
        table_name: str,
        pk_value,
        txn: Optional[Transaction] = None,
    ) -> None:
        """Delete one row by primary key (invalidation only)."""
        transaction, own = self._txn_or_begin(txn)
        table = self.catalog.table(table_name)
        old_row = table.get_row(pk_value) if self._write_listeners else None
        table.delete(pk_value, transaction.tid)
        if self._write_listeners:
            for listener in self._write_listeners:
                listener.on_delete(table_name, old_row, transaction.tid)
        if own:
            transaction.commit()

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def merge(
        self,
        table_name: Optional[str] = None,
        group_name: Optional[str] = None,
        keep_history: bool = False,
    ) -> List[MergeStats]:
        """Run the delta merge — for one table or all of them — with the
        aggregate cache attached as maintenance listener.

        Merging related tables in one call is the merge-synchronization of
        Section 5.2: their deltas empty together, maximizing pruning.
        """
        tables = (
            [self.catalog.table(table_name)]
            if table_name is not None
            else self.catalog.tables()
        )
        snapshot = self.transactions.global_snapshot()
        return [
            merge_table(
                table,
                snapshot,
                listeners=[self.cache] + self._merge_listeners,
                group_name=group_name,
                keep_history=keep_history,
            )
            for table in tables
        ]

    def auto_merge(self, advisor=None) -> List[MergeStats]:
        """Consult a merge advisor and merge the recommended tables.

        Tables connected by matching dependencies merge together, so the
        merges are synchronized (Section 5.2).  Returns the merge stats
        (empty list = nothing recommended).
        """
        from .core.merge_advisor import MergeAdvisor

        advisor = advisor if advisor is not None else MergeAdvisor()
        recommendation = advisor.recommend(self)
        stats: List[MergeStats] = []
        for name in recommendation.tables:
            stats.extend(self.merge(name))
        return stats

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def parse(self, sql: str) -> AggregateQuery:
        """Parse SQL text into an :class:`AggregateQuery`."""
        return parse_sql(sql)

    def query(
        self,
        query: Union[str, AggregateQuery],
        strategy: Optional[ExecutionStrategy] = None,
        txn: Optional[Transaction] = None,
        as_of: Optional[int] = None,
    ) -> QueryResult:
        """Answer an aggregate query (SQL text or query object).

        ``as_of`` pins the read to a past transaction id (time travel); it
        sees whatever that snapshot saw, provided history was retained
        (``merge(keep_history=True)`` keeps invalidated rows).  The
        per-query :class:`CacheQueryReport` is kept in ``last_report``.
        """
        if isinstance(query, str):
            query = parse_sql(query)
        if as_of is not None:
            if txn is not None:
                raise QueryError("pass either txn or as_of, not both")
            reader = SnapshotReader(as_of)
            grouped, report = self.cache.execute(query, reader, strategy=strategy)
            self.last_report = report
            return QueryResult.from_grouped(query, grouped)
        transaction, own = self._txn_or_begin(txn)
        grouped, report = self.cache.execute(query, transaction, strategy=strategy)
        if own:
            transaction.commit()
        self.last_report = report
        return QueryResult.from_grouped(query, grouped)

    def explain(
        self,
        query: Union[str, AggregateQuery],
        strategy: Optional[ExecutionStrategy] = None,
    ) -> str:
        """EXPLAIN: how the cache would answer the query, without running it.

        Shows the cached all-main combinations (hit/miss) and the fate of
        every delta-compensation subjoin — evaluated, or pruned by which
        mechanism, with any derived pushdown filters.
        """
        if isinstance(query, str):
            query = parse_sql(query)
        return self.cache.explain(query, strategy).render()

    def export_csv(self, table_name: str, path, include_tid_columns: bool = False) -> int:
        """Write the table's visible rows to a CSV file; returns the count."""
        from .storage.csvio import export_csv

        return export_csv(self, table_name, path, include_tid_columns)

    def import_csv(self, table_name: str, path, batch_size: int = 1000) -> int:
        """Load rows from a CSV file through the normal insert path."""
        from .storage.csvio import import_csv

        return import_csv(self, table_name, path, batch_size=batch_size)

    def statistics(self):
        """A monitoring snapshot (storage / cache / enforcement); see
        :mod:`repro.monitor`."""
        from .monitor import collect_statistics

        return collect_statistics(self)

    def table(self, name: str) -> Table:
        """The live :class:`Table` object by name."""
        return self.catalog.table(name)

    def __repr__(self) -> str:
        return (
            f"Database(tables={self.catalog.table_names()}, "
            f"cache_entries={self.cache.entry_count()})"
        )
