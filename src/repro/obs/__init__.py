"""Observability: metrics registry, per-query traces, EXPLAIN ANALYZE.

The measurement substrate of the engine.  Three pieces:

* :mod:`repro.obs.registry` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges, and fixed-bucket latency histograms with a
  Prometheus-text exporter (and parser), plus a zero-cost no-op mode;
* :mod:`repro.obs.instruments` — :class:`EngineMetrics`, the bundle that
  registers every canonical metric name (:mod:`repro.obs.names`) exactly
  once and is threaded through the executor, cache manager, pruner,
  merge, and WAL;
* :mod:`repro.obs.trace` — :class:`QueryTrace`/:class:`Span`, the
  structured per-query trace returned by
  :meth:`repro.database.Database.explain_analyze`.

``Database(observability=False)`` swaps in ``NULL_REGISTRY``: the hooks
stay in place but every increment/observe is an empty call.
"""

from . import names
from .instruments import EngineMetrics
from .registry import (
    Counter,
    FSYNC_BUCKETS,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    parse_prometheus,
)
from .trace import QueryTrace, Span

__all__ = [
    "Counter",
    "EngineMetrics",
    "FSYNC_BUCKETS",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "QueryTrace",
    "Span",
    "names",
    "parse_prometheus",
]
