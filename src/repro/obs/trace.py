"""Per-query structured traces: what EXPLAIN ANALYZE returns.

A :class:`QueryTrace` is a tree of timed :class:`Span`\\ s covering one
query's execution: bind → per-combination cache lookup (with entry build
and main compensation as children) → delta compensation (with one child
span per compensation subjoin — pruned or evaluated).  The cache manager
fills the tree while answering the query; the executor contributes the
evaluated-subjoin spans (partition assignment, rows scanned, pushdown
filters, worker id) and the pruning layer contributes one near-zero-cost
span per pruned subjoin carrying its :class:`PruneReport` reason.

Spans are plain data: traces can be rendered (:meth:`QueryTrace.render`),
walked (:meth:`QueryTrace.subjoin_spans`), or serialized
(:meth:`QueryTrace.to_dict`).  Serial and parallel executions of the same
query produce the same span *set* — only timings and worker ids differ —
which the test suite asserts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed step of a query, with free-form attributes and children."""

    name: str
    start: float = 0.0  # perf_counter timestamp; relative order only
    duration: float = 0.0  # seconds
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @classmethod
    def begin(cls, name: str, **attrs: object) -> "Span":
        """Start a span now."""
        return cls(name=name, start=time.perf_counter(), attrs=dict(attrs))

    def finish(self) -> "Span":
        """Close the span, fixing its duration; returns self."""
        self.duration = time.perf_counter() - self.start
        return self

    def child(self, name: str, **attrs: object) -> "Span":
        """Start a child span now and attach it."""
        span = Span.begin(name, **attrs)
        self.children.append(span)
        return span

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (durations in seconds)."""
        return {
            "name": self.name,
            "duration_s": self.duration,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    # ------------------------------------------------------------------
    def identity(self) -> tuple:
        """Timing- and worker-free identity, for cross-run comparison."""
        skip = {"worker", "rows_scanned", "seconds"}
        stable = tuple(
            sorted((k, repr(v)) for k, v in self.attrs.items() if k not in skip)
        )
        return (self.name, stable)

    def render(self, indent: int = 0) -> List[str]:
        """Indented one-line-per-span rendering."""
        parts = [f"{'  ' * indent}{self.name}"]
        for key in sorted(self.attrs):
            parts.append(f"{key}={_fmt_attr(self.attrs[key])}")
        parts.append(f"[{self.duration * 1000:.3f} ms]")
        lines = [" ".join(parts)]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


def _fmt_attr(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, dict):
        inner = ",".join(f"{k}:{_fmt_attr(v)}" for k, v in sorted(value.items()))
        return "{" + inner + "}"
    return str(value)


class QueryTrace:
    """The span tree of one query execution, plus its outcome.

    ``result`` (the :class:`~repro.query.result.QueryResult`) and
    ``report`` (the :class:`~repro.core.manager.CacheQueryReport`) are
    attached once the query finishes, so a trace is a self-contained
    record of what happened and why.
    """

    def __init__(self, sql: Optional[str] = None):
        self.sql = sql
        self.root = Span.begin("query")
        self.result = None
        self.report = None

    # ------------------------------------------------------------------
    def child(self, name: str, **attrs: object) -> Span:
        """Start a new top-level span under the root."""
        return self.root.child(name, **attrs)

    def finish(self) -> "QueryTrace":
        """Close the root span; returns self."""
        self.root.finish()
        return self

    @property
    def total_seconds(self) -> float:
        """Wall-clock duration of the whole query."""
        return self.root.duration

    def spans(self) -> List[Span]:
        """Every span in the tree, depth-first (root included)."""
        return list(self.root.walk())

    def subjoin_spans(self) -> List[Span]:
        """All per-subjoin spans (pruned and evaluated), document order."""
        return [s for s in self.root.walk() if s.name == "subjoin"]

    def span_named(self, name: str) -> Optional[Span]:
        """The first span with the given name, if any."""
        for span in self.root.walk():
            if span.name == name:
                return span
        return None

    def identity(self) -> tuple:
        """Order-insensitive identity of the subjoin span set."""
        return tuple(sorted(s.identity() for s in self.subjoin_spans()))

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly trace (sql + span tree)."""
        return {"sql": self.sql, "trace": self.root.to_dict()}

    def render(self) -> str:
        """Human-readable multi-line rendering (the EXPLAIN ANALYZE view)."""
        header: List[str] = []
        if self.sql:
            header.append(f"EXPLAIN ANALYZE {self.sql}")
        subjoins = self.subjoin_spans()
        pruned = [s for s in subjoins if s.attrs.get("status") == "pruned"]
        evaluated = len(subjoins) - len(pruned)
        header.append(
            f"total {self.total_seconds * 1000:.3f} ms — "
            f"{len(subjoins)} compensation subjoins "
            f"({evaluated} evaluated, {len(pruned)} pruned)"
        )
        return "\n".join(header + self.root.render())
