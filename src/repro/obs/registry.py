"""A thread-safe metrics registry with a Prometheus-text exporter.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing float, optionally split by a
  fixed set of label names (``counter.labels("hit").inc()``);
* :class:`Gauge` — a value that goes up and down (``gauge.set(3)``);
* :class:`Histogram` — observations bucketed into *fixed* cumulative
  ``le`` buckets plus ``_sum``/``_count`` series, for latencies.

All mutation is lock-protected per instrument, so concurrent queries can
increment freely.  :meth:`MetricsRegistry.render_prometheus` emits the
standard text exposition format and :func:`parse_prometheus` parses it
back (the round-trip is tested), so the output can be scraped or diffed.

``NULL_REGISTRY`` is the zero-cost no-op mode: it hands out one shared
inert instrument whose ``inc``/``set``/``observe`` bodies are a bare
``pass``, so a database built with ``observability=False`` pays only an
attribute lookup and an empty call per hook.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError

#: Default latency buckets (seconds): 100 µs … 5 s, roughly ×2.5 apart.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Finer buckets for fsync-scale events (10 µs … 1 s).
FSYNC_BUCKETS = (
    0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001,
    0.0025, 0.005, 0.01, 0.05, 0.25, 1.0,
)

_Sample = Tuple[str, Tuple[Tuple[str, str], ...], float]


def _label_string(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in labels)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(value: str) -> str:
    out = []
    it = iter(value)
    for ch in it:
        if ch == "\\":
            nxt = next(it, "")
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
        else:
            out.append(ch)
    return "".join(out)


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Shared plumbing: a name, help text, and a lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str):
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def samples(self) -> Iterator[_Sample]:  # pragma: no cover - interface
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing value, optionally labelled.

    With ``label_names`` declared, the counter is a *family*: call
    ``labels(value, ...)`` to get (and lazily create) the child for one
    label combination.  Unlabelled counters increment directly.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()):
        super().__init__(name, help)
        self.label_names = tuple(label_names)
        self._value = 0.0
        self._children: Dict[Tuple[str, ...], "Counter"] = {}

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must not be negative — counters only go up)."""
        if amount < 0:
            raise ObservabilityError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    def labels(self, *values: str) -> "Counter":
        """The child counter for one label-value combination."""
        if len(values) != len(self.label_names):
            raise ObservabilityError(
                f"counter {self.name} takes labels {self.label_names}, "
                f"got {values!r}"
            )
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Counter(self.name, self.help)
                self._children[key] = child
            return child

    @property
    def value(self) -> float:
        """Current value (sum over children for labelled counters)."""
        with self._lock:
            if self._children:
                return sum(c.value for c in self._children.values())
            return self._value

    def samples(self) -> Iterator[_Sample]:
        with self._lock:
            children = sorted(self._children.items())
            own = self._value
        if self.label_names:
            for key, child in children:
                yield self.name, tuple(zip(self.label_names, key)), child.value
        else:
            yield self.name, (), own


class Gauge(_Instrument):
    """A value that can go up and down; optionally backed by a callback.

    With ``label_names`` declared, the gauge is a family like a labelled
    :class:`Counter`: ``labels(value, ...)`` returns the child for one
    label combination (e.g. one breaker-state gauge per breaker).
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
        label_names: Sequence[str] = (),
    ):
        super().__init__(name, help)
        self.label_names = tuple(label_names)
        self._value = 0.0
        self._fn = fn
        self._children: Dict[Tuple[str, ...], "Gauge"] = {}

    def set(self, value: float) -> None:
        """Set the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def labels(self, *values: str) -> "Gauge":
        """The child gauge for one label-value combination."""
        if len(values) != len(self.label_names):
            raise ObservabilityError(
                f"gauge {self.name} takes labels {self.label_names}, "
                f"got {values!r}"
            )
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Gauge(self.name, self.help)
                self._children[key] = child
            return child

    @property
    def value(self) -> float:
        """Current value (calls the callback when one was given)."""
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def samples(self) -> Iterator[_Sample]:
        with self._lock:
            children = sorted(self._children.items())
        if self.label_names:
            for key, child in children:
                yield self.name, tuple(zip(self.label_names, key)), child.value
        else:
            yield self.name, (), self.value


class Histogram(_Instrument):
    """Fixed-bucket cumulative histogram (Prometheus ``le`` semantics).

    ``buckets`` are the finite upper bounds, ascending; an implicit
    ``+Inf`` bucket catches everything above the last bound.  An
    observation equal to a bound lands in that bound's bucket.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: Sequence[float] = LATENCY_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram {name}: buckets must be strictly ascending"
            )
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def bucket_counts(self) -> Dict[float, int]:
        """Cumulative count per upper bound (including ``inf``)."""
        with self._lock:
            counts = list(self._counts)
        cumulative: Dict[float, int] = {}
        running = 0
        for bound, n in zip(self.bounds + (float("inf"),), counts):
            running += n
            cumulative[bound] = running
        return cumulative

    def samples(self) -> Iterator[_Sample]:
        for bound, cumulative in self.bucket_counts().items():
            yield (
                f"{self.name}_bucket",
                (("le", _format_value(bound)),),
                float(cumulative),
            )
        yield f"{self.name}_sum", (), self.sum
        yield f"{self.name}_count", (), float(self._count)


class MetricsRegistry:
    """Holds the engine's instruments; one per :class:`~repro.database.Database`.

    Registering the same name twice raises — the engine's invariant is
    that every metric name is created exactly once, in
    :class:`~repro.obs.instruments.EngineMetrics`.
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Instrument] = {}

    # ------------------------------------------------------------------
    def _register(self, metric: _Instrument) -> _Instrument:
        with self._lock:
            if metric.name in self._metrics:
                raise ObservabilityError(
                    f"metric {metric.name!r} is already registered"
                )
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        """Create and register a counter (family, when ``labels`` given)."""
        return self._register(Counter(name, help, labels))

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
        labels: Sequence[str] = (),
    ) -> Gauge:
        """Create and register a gauge (family, when ``labels`` given)."""
        return self._register(Gauge(name, help, fn, labels))

    def histogram(self, name: str, help: str = "", buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        """Create and register a fixed-bucket histogram."""
        return self._register(Histogram(name, help, buckets))

    # ------------------------------------------------------------------
    def get(self, name: str) -> _Instrument:
        """The registered instrument by name (KeyError if absent)."""
        with self._lock:
            return self._metrics[name]

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, float]:
        """Flat ``name{labels}`` → value mapping of every sample.

        Keys match the sample lines of :meth:`render_prometheus` exactly,
        so ``parse_prometheus(render_prometheus()) == snapshot()``.
        """
        out: Dict[str, float] = {}
        with self._lock:
            metrics = sorted(self._metrics.items())
        for _name, metric in metrics:
            for sample_name, labels, value in metric.samples():
                out[sample_name + _label_string(labels)] = value
        return out

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for sample_name, labels, value in metric.samples():
                lines.append(
                    f"{sample_name}{_label_string(labels)} {_format_value(value)}"
                )
        return "\n".join(lines) + "\n"


class _NullInstrument:
    """One shared inert instrument: every mutation is a no-op."""

    __slots__ = ()
    name = "null"
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, *values: str) -> "_NullInstrument":
        return self

    def bucket_counts(self) -> Dict[float, int]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: hands out inert instruments, exports nothing."""

    enabled = False

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", fn=None, labels: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", buckets: Sequence[float] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def names(self) -> List[str]:
        return []

    def snapshot(self) -> Dict[str, float]:
        return {}

    def render_prometheus(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse Prometheus text exposition back into ``snapshot()`` form.

    Understands exactly what :meth:`MetricsRegistry.render_prometheus`
    emits (sample lines with optional labels, ``# HELP``/``# TYPE``
    comments); raises :class:`~repro.errors.ObservabilityError` on
    malformed sample lines so the round-trip test catches format drift.
    """
    out: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            key, raw_value = line.rsplit(" ", 1)
            value = float("inf") if raw_value == "+Inf" else float(raw_value)
        except ValueError:
            raise ObservabilityError(
                f"malformed metrics line {lineno}: {line!r}"
            ) from None
        if "{" in key:
            name, _, label_part = key.partition("{")
            if not label_part.endswith("}"):
                raise ObservabilityError(f"malformed labels on line {lineno}: {line!r}")
            labels = _parse_labels(label_part[:-1], lineno)
            key = name + _label_string(labels)
        out[key] = value
    return out


def _parse_labels(body: str, lineno: int) -> Tuple[Tuple[str, str], ...]:
    labels: List[Tuple[str, str]] = []
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        name = body[i:eq]
        if body[eq + 1] != '"':
            raise ObservabilityError(f"unquoted label value on line {lineno}")
        j = eq + 2
        raw: List[str] = []
        while body[j] != '"':
            if body[j] == "\\":
                raw.append(body[j : j + 2])
                j += 2
            else:
                raw.append(body[j])
                j += 1
        labels.append((name, _unescape("".join(raw))))
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return tuple(labels)
