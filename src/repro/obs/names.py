"""Canonical metric names of the engine's observability layer.

Every metric the engine registers lives here, as one constant, so that

* the name is spelled exactly once in the source tree (a lint test greps
  for stray ``repro_…`` literals outside this module);
* :class:`~repro.obs.instruments.EngineMetrics` can assert at construction
  time that each name is registered exactly once;
* EXPERIMENTS.md can document the full list without chasing call sites.

Naming follows the Prometheus conventions: ``_total`` suffix for
counters, ``_seconds``/``_bytes`` units, no ``repro_``-prefix reuse for
different kinds.
"""

from __future__ import annotations

# --- query path ------------------------------------------------------------
QUERIES_TOTAL = "repro_queries_total"
QUERY_SECONDS = "repro_query_seconds"

# --- aggregate cache -------------------------------------------------------
CACHE_LOOKUPS_TOTAL = "repro_cache_lookups_total"
CACHE_ENTRIES = "repro_cache_entries"
CACHE_VALUE_BYTES = "repro_cache_value_bytes"
CACHE_PROFIT_PER_BYTE = "repro_cache_profit_per_byte"
CACHE_BUILD_SECONDS = "repro_cache_entry_build_seconds"
CACHE_EVICTIONS_TOTAL = "repro_cache_evictions_total"
CACHE_MAINTENANCE_RUNS_TOTAL = "repro_cache_maintenance_runs_total"
MAIN_COMPENSATION_SECONDS = "repro_main_compensation_seconds"
DELTA_COMPENSATION_SECONDS = "repro_delta_compensation_seconds"
COMPENSATED_ROWS_TOTAL = "repro_compensated_rows_total"
DELTA_MEMO_LOOKUPS_TOTAL = "repro_delta_memo_lookups_total"
DELTA_MEMO_ROWS_SAVED_TOTAL = "repro_delta_memo_rows_saved_total"
RECYCLER_LOOKUPS_TOTAL = "repro_recycler_lookups_total"
RECYCLER_BYTES = "repro_recycler_bytes"
RECYCLER_ENTRIES = "repro_recycler_entries"
RECYCLER_EVICTIONS_TOTAL = "repro_recycler_evictions_total"
CACHE_REFRESH_TOTAL = "repro_cache_refresh_total"

# --- planner / plan cache --------------------------------------------------
PLAN_BUILD_SECONDS = "repro_plan_build_seconds"
PLAN_CACHE_LOOKUPS_TOTAL = "repro_plan_cache_lookups_total"
PLAN_CACHE_ENTRIES = "repro_plan_cache_entries"
PLAN_CACHE_EVICTIONS_TOTAL = "repro_plan_cache_evictions_total"

# --- subjoin execution / pruning ------------------------------------------
SUBJOINS_EVALUATED_TOTAL = "repro_subjoins_evaluated_total"
SUBJOINS_EMPTY_TOTAL = "repro_subjoins_empty_total"
SUBJOINS_PRUNED_TOTAL = "repro_subjoins_pruned_total"
PUSHDOWN_FILTERS_TOTAL = "repro_pushdown_filters_total"
ROWS_AGGREGATED_TOTAL = "repro_rows_aggregated_total"

# --- storage / durability --------------------------------------------------
STORAGE_TIER_BYTES = "repro_storage_tier_bytes"
STORAGE_DEMOTIONS_TOTAL = "repro_storage_demotions_total"
PRUNING_SYNOPSIS_SKIPS_TOTAL = "repro_pruning_synopsis_skips_total"
MERGE_SECONDS = "repro_merge_seconds"
MERGE_ROWS_MOVED_TOTAL = "repro_merge_rows_moved_total"
MERGE_ROWS_DROPPED_TOTAL = "repro_merge_rows_dropped_total"
WAL_APPENDS_TOTAL = "repro_wal_appends_total"
WAL_BYTES_TOTAL = "repro_wal_bytes_total"
WAL_FSYNC_SECONDS = "repro_wal_fsync_seconds"

# --- resource governor -----------------------------------------------------
GOVERNOR_TIMEOUTS_TOTAL = "repro_governor_timeouts_total"
GOVERNOR_CANCELLATIONS_TOTAL = "repro_governor_cancellations_total"
GOVERNOR_SHEDS_TOTAL = "repro_governor_sheds_total"
GOVERNOR_SHED_BYTES_TOTAL = "repro_governor_shed_bytes_total"
GOVERNOR_RETRIES_TOTAL = "repro_governor_retries_total"
GOVERNOR_WRITES_REJECTED_TOTAL = "repro_governor_writes_rejected_total"
GOVERNOR_DEGRADED_QUERIES_TOTAL = "repro_governor_degraded_queries_total"
GOVERNOR_BREAKER_STATE = "repro_governor_breaker_state"
GOVERNOR_BREAKER_TRANSITIONS_TOTAL = "repro_governor_breaker_transitions_total"
GOVERNOR_TRACKED_BYTES = "repro_governor_tracked_bytes"

#: Every canonical metric name, for the uniqueness/coverage lint.
ALL_NAMES = tuple(
    value
    for key, value in sorted(globals().items())
    if key.isupper() and isinstance(value, str) and key != "ALL_NAMES"
)
