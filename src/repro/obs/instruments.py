"""The engine's instrument bundle: every metric, registered exactly once.

:class:`EngineMetrics` is the object the engine components hold; it owns a
:class:`~repro.obs.registry.MetricsRegistry` (or the shared no-op
``NULL_REGISTRY`` when observability is disabled) and creates one
instrument attribute per canonical name in :mod:`repro.obs.names`.  All
registration happens here — a component never invents a metric name — so
the registry's duplicate-name check plus the name lint test enforce the
"registered exactly once" invariant structurally.
"""

from __future__ import annotations

from typing import Optional

from . import names
from .registry import (
    FSYNC_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
)


class EngineMetrics:
    """All engine instruments, hanging off one registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        r = registry if registry is not None else MetricsRegistry()
        self.registry = r
        # --- query path ---------------------------------------------------
        self.queries = r.counter(
            names.QUERIES_TOTAL, "Queries answered, by execution strategy.",
            labels=("strategy",),
        )
        self.query_seconds = r.histogram(
            names.QUERY_SECONDS, "End-to-end query latency.", LATENCY_BUCKETS
        )
        # --- aggregate cache ----------------------------------------------
        self.cache_lookups = r.counter(
            names.CACHE_LOOKUPS_TOTAL,
            "Cache entry lookups, by outcome (hit/miss/recomputed).",
            labels=("outcome",),
        )
        self.cache_entries = r.gauge(
            names.CACHE_ENTRIES, "Live aggregate cache entries."
        )
        self.cache_value_bytes = r.gauge(
            names.CACHE_VALUE_BYTES, "Approximate bytes held by cached values."
        )
        self.cache_profit_per_byte = r.gauge(
            names.CACHE_PROFIT_PER_BYTE,
            "Summed per-entry profit estimate (seconds saved per byte).",
        )
        self.cache_build_seconds = r.histogram(
            names.CACHE_BUILD_SECONDS,
            "Time to build a cache entry's main aggregate on a miss.",
            LATENCY_BUCKETS,
        )
        self.cache_evictions = r.counter(
            names.CACHE_EVICTIONS_TOTAL, "Cache entries evicted or dropped."
        )
        self.cache_maintenance_runs = r.counter(
            names.CACHE_MAINTENANCE_RUNS_TOTAL,
            "Incremental entry maintenance runs applied at delta merges.",
        )
        self.main_compensation_seconds = r.histogram(
            names.MAIN_COMPENSATION_SECONDS,
            "Per-query time subtracting invalidated main rows.",
            LATENCY_BUCKETS,
        )
        self.delta_compensation_seconds = r.histogram(
            names.DELTA_COMPENSATION_SECONDS,
            "Per-query time aggregating the surviving compensation subjoins.",
            LATENCY_BUCKETS,
        )
        self.compensated_rows = r.counter(
            names.COMPENSATED_ROWS_TOTAL,
            "Invalidated main rows compensated across all queries.",
        )
        self.delta_memo_lookups = r.counter(
            names.DELTA_MEMO_LOOKUPS_TOTAL,
            "Delta-compensation memo routing decisions, by outcome "
            "(hit = incremental reuse, miss = full rebuild, bypass).",
            labels=("outcome",),
        )
        self.delta_memo_rows_saved = r.counter(
            names.DELTA_MEMO_ROWS_SAVED_TOTAL,
            "Covered delta-prefix rows incremental compensation skipped.",
        )
        self.recycler_lookups = r.counter(
            names.RECYCLER_LOOKUPS_TOTAL,
            "Cross-query subjoin recycler probes, by outcome "
            "(hit / miss / stale = horizon or partition mismatch / "
            "bypass = not stably keyable).",
            labels=("outcome",),
        )
        self.recycler_bytes = r.gauge(
            names.RECYCLER_BYTES,
            "Approximate bytes held by recycled subjoin indices.",
        )
        self.recycler_entries = r.gauge(
            names.RECYCLER_ENTRIES, "Live recycled subjoin entries."
        )
        self.recycler_evictions = r.counter(
            names.RECYCLER_EVICTIONS_TOTAL,
            "Recycled subjoins dropped, by reason "
            "(budget / stale / invalidated / shed).",
            labels=("reason",),
        )
        self.cache_refresh = r.counter(
            names.CACHE_REFRESH_TOTAL,
            "Proactive cache-entry refreshes, by routed action "
            "(advance / rebuild / skip).",
            labels=("action",),
        )
        # --- planner / plan cache -----------------------------------------
        self.plan_build_seconds = r.histogram(
            names.PLAN_BUILD_SECONDS,
            "Time to bind and lower a statement to a physical plan.",
            LATENCY_BUCKETS,
        )
        self.plan_cache_lookups = r.counter(
            names.PLAN_CACHE_LOOKUPS_TOTAL,
            "Plan cache lookups, by outcome (hit/miss/invalidated).",
            labels=("outcome",),
        )
        self.plan_cache_entries = r.gauge(
            names.PLAN_CACHE_ENTRIES, "Live cached physical plans."
        )
        self.plan_cache_evictions = r.counter(
            names.PLAN_CACHE_EVICTIONS_TOTAL,
            "Cached plans dropped (invalidated, evicted, or cleared).",
        )
        # --- subjoin execution / pruning ----------------------------------
        self.subjoins_evaluated = r.counter(
            names.SUBJOINS_EVALUATED_TOTAL, "Subjoins handed to the executor."
        )
        self.subjoins_empty = r.counter(
            names.SUBJOINS_EMPTY_TOTAL,
            "Evaluated subjoins that turned out empty (scan/join/filter).",
        )
        self.subjoins_pruned = r.counter(
            names.SUBJOINS_PRUNED_TOTAL,
            "Compensation subjoins skipped, by prune reason "
            "(empty/logical/dynamic).",
            labels=("reason",),
        )
        self.pushdown_filters = r.counter(
            names.PUSHDOWN_FILTERS_TOTAL,
            "Join-predicate pushdown filters attached to subjoin scans.",
        )
        self.rows_aggregated = r.counter(
            names.ROWS_AGGREGATED_TOTAL, "Rows folded into grouped aggregates."
        )
        # --- storage / durability -----------------------------------------
        self.storage_tier_bytes = r.gauge(
            names.STORAGE_TIER_BYTES,
            "Approximate table bytes by storage tier "
            "(hot/cold_resident/cold_mapped).",
            labels=("tier",),
        )
        self.storage_demotions = r.counter(
            names.STORAGE_DEMOTIONS_TOTAL,
            "Main partitions demoted to the memory-mapped cold tier.",
        )
        self.pruning_synopsis_skips = r.counter(
            names.PRUNING_SYNOPSIS_SKIPS_TOTAL,
            "Pruned subjoins involving a mapped cold partition — cold "
            "scans avoided purely from the resident synopsis.",
        )
        self.merge_seconds = r.histogram(
            names.MERGE_SECONDS, "Delta-merge duration per table.", LATENCY_BUCKETS
        )
        self.merge_rows_moved = r.counter(
            names.MERGE_ROWS_MOVED_TOTAL, "Delta rows moved into new mains."
        )
        self.merge_rows_dropped = r.counter(
            names.MERGE_ROWS_DROPPED_TOTAL, "Invalidated rows dropped by merges."
        )
        self.wal_appends = r.counter(
            names.WAL_APPENDS_TOTAL, "Records appended to the write-ahead log."
        )
        self.wal_bytes = r.counter(
            names.WAL_BYTES_TOTAL, "Bytes appended to the write-ahead log."
        )
        self.wal_fsync_seconds = r.histogram(
            names.WAL_FSYNC_SECONDS,
            "fsync latency of durable WAL appends.",
            FSYNC_BUCKETS,
        )
        # --- resource governor --------------------------------------------
        self.governor_timeouts = r.counter(
            names.GOVERNOR_TIMEOUTS_TOTAL,
            "Queries aborted because their deadline expired.",
        )
        self.governor_cancellations = r.counter(
            names.GOVERNOR_CANCELLATIONS_TOTAL,
            "Queries aborted through an explicit CancelToken.",
        )
        self.governor_sheds = r.counter(
            names.GOVERNOR_SHEDS_TOTAL,
            "Cache state shed under memory pressure, by kind "
            "(cold/memo/entry/plan).",
            labels=("kind",),
        )
        self.governor_shed_bytes = r.counter(
            names.GOVERNOR_SHED_BYTES_TOTAL,
            "Approximate bytes freed by memory-budget shedding.",
        )
        self.governor_retries = r.counter(
            names.GOVERNOR_RETRIES_TOTAL,
            "Transient I/O failures absorbed by retry/backoff, by point.",
            labels=("point",),
        )
        self.governor_writes_rejected = r.counter(
            names.GOVERNOR_WRITES_REJECTED_TOTAL,
            "Mutations rejected while the database was WAL-degraded.",
        )
        self.governor_degraded_queries = r.counter(
            names.GOVERNOR_DEGRADED_QUERIES_TOTAL,
            "Queries answered from base tables due to cache degradation, "
            "by reason (breaker_open/fallback).",
            labels=("reason",),
        )
        self.governor_breaker_state = r.gauge(
            names.GOVERNOR_BREAKER_STATE,
            "Circuit breaker state (0=closed, 1=open, 2=half_open).",
            labels=("breaker",),
        )
        self.governor_breaker_transitions = r.counter(
            names.GOVERNOR_BREAKER_TRANSITIONS_TOTAL,
            "Circuit breaker state transitions, by breaker and new state.",
            labels=("breaker", "state"),
        )
        self.governor_tracked_bytes = r.gauge(
            names.GOVERNOR_TRACKED_BYTES,
            "Bytes currently tracked against the memory budget.",
        )

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """False when backed by the no-op registry."""
        return self.registry.enabled

    @classmethod
    def disabled(cls) -> "EngineMetrics":
        """The zero-cost bundle: every instrument is a shared no-op."""
        return cls(NULL_REGISTRY)
