"""Transaction management and the consistent view manager."""

from .consistent_view import ConsistentViewManager
from .manager import SnapshotReader, Transaction, TransactionManager

__all__ = ["ConsistentViewManager", "SnapshotReader", "Transaction", "TransactionManager"]
