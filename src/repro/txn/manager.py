"""Transaction management.

The engine models the single-writer, auto-committing transaction stream of
the paper's benchmarks: every transaction receives a monotonically
increasing transaction id (*tid*) at begin, stamps the rows it creates or
invalidates with that tid, and is immediately durable on commit.  The tid
doubles as the *temporal attribute* of the matching dependencies (Section
5): "an auto-incremented transaction identifier (generally available in an
IMDB)".

Snapshot semantics: a transaction sees every row created by transactions
with ``tid <= own tid`` that was not invalidated by such a transaction —
i.e. its snapshot *is* its tid, and the latest issued tid is the global
read snapshot.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from ..errors import TransactionError


class Transaction:
    """A lightweight transaction handle.

    The handle's ``tid`` is both its write stamp and its read snapshot.
    ``commit``/``abort`` only toggle state used for misuse detection —
    single-writer execution needs no undo log (an aborting workload is out
    of scope for the paper's experiments, which replay committed inserts).
    """

    __slots__ = ("tid", "_manager", "_state")

    def __init__(self, tid: int, manager: "TransactionManager"):
        self.tid = tid
        self._manager = manager
        self._state = "active"

    @property
    def snapshot(self) -> int:
        """The read snapshot of this transaction (its own tid)."""
        return self.tid

    @property
    def is_active(self) -> bool:
        """True until commit or abort."""
        return self._state == "active"

    @property
    def state(self) -> str:
        """``"active"``, ``"committed"``, or ``"aborted"``."""
        return self._state

    def commit(self) -> None:
        """Mark the transaction committed (single-writer: instantly durable)."""
        if self._state != "active":
            raise TransactionError(f"cannot commit a {self._state} transaction")
        self._state = "committed"
        self._manager._on_finish(self)

    def abort(self) -> None:
        """Mark the transaction aborted (misuse detection; no undo needed)."""
        if self._state != "active":
            raise TransactionError(f"cannot abort a {self._state} transaction")
        self._state = "aborted"
        self._manager._on_finish(self)

    def require_active(self) -> None:
        """Raise TransactionError unless the transaction is still active."""
        if self._state != "active":
            raise TransactionError(
                f"operation on {self._state} transaction {self.tid}"
            )

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._state == "active":
            if exc_type is None:
                self.commit()
            else:
                self.abort()

    def __repr__(self) -> str:
        return f"Transaction(tid={self.tid}, state={self._state})"


class SnapshotReader:
    """A read-only stand-in for a transaction pinned to a past snapshot.

    Supports time-travel queries ("AS OF transaction N"): the aggregate
    cache and executor only consult ``snapshot``/``tid``, so a reader shim
    is all that is needed.  Meaningful for data retained via
    ``merge(keep_history=True)`` (Section 2: invalidated records can be
    kept "so that temporal query processing on historical data can be
    supported").
    """

    __slots__ = ("tid",)

    def __init__(self, snapshot: int):
        self.tid = snapshot

    @property
    def snapshot(self) -> int:
        """The pinned read snapshot."""
        return self.tid

    @property
    def is_active(self) -> bool:
        """Always True — a reader shim never closes."""
        return True

    def require_active(self) -> None:
        """No-op (reader shims are always usable)."""
        return None

    def __repr__(self) -> str:
        return f"SnapshotReader(snapshot={self.tid})"


class TransactionManager:
    """Issues transaction ids and tracks the global snapshot.

    ``finish_hooks`` observe every transaction end (commit *and* abort) —
    the durable database flushes the transaction's buffered write-ahead-log
    operations from such a hook, so durability rides the same event that
    makes a transaction's writes visible.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._next_tid = 1
        self._latest_tid = 0
        self.finish_hooks: List[Callable[[Transaction], None]] = []

    def begin(self) -> Transaction:
        """Start a new transaction with the next tid (thread-safe: two
        concurrent ``begin`` calls never share a tid)."""
        with self._lock:
            txn = Transaction(self._next_tid, self)
            self._latest_tid = self._next_tid
            self._next_tid += 1
            return txn

    @property
    def latest_tid(self) -> int:
        """The most recently issued tid — the global read snapshot."""
        with self._lock:
            return self._latest_tid

    def advance_to(self, tid: int) -> None:
        """Fast-forward past ``tid`` (snapshot restore): future transactions
        receive ids strictly greater than everything already stamped."""
        with self._lock:
            if tid > self._latest_tid:
                self._latest_tid = tid
                self._next_tid = tid + 1

    def global_snapshot(self) -> int:
        """Snapshot covering everything committed so far."""
        with self._lock:
            return self._latest_tid

    def _on_finish(self, txn: Transaction) -> None:
        for hook in list(self.finish_hooks):
            hook(txn)

    def __repr__(self) -> str:
        return f"TransactionManager(latest_tid={self._latest_tid})"
