"""The consistent view manager (Fig. 1 / Section 2.2).

Translates a transaction's token (its tid) into per-partition visibility
bit vectors.  The aggregate cache asks it for

* the *global* visibility of a main partition when an entry is created,
* the *current transaction's* visibility of main and delta partitions when
  an entry is used, so main compensation can diff the stored and current
  vectors and delta compensation can aggregate exactly the visible delta
  rows.
"""

from __future__ import annotations

import numpy as np

from ..storage.bitvector import BitVector
from ..storage.partition import Partition
from .manager import Transaction, TransactionManager


class ConsistentViewManager:
    """Produces visibility vectors for partitions at a given snapshot."""

    def __init__(self, txn_manager: TransactionManager):
        self._txn_manager = txn_manager

    # ------------------------------------------------------------------
    def global_visibility(self, partition: Partition) -> BitVector:
        """Visibility vector of ``partition`` for the latest committed state."""
        return partition.visibility(self._txn_manager.global_snapshot())

    def txn_visibility(self, partition: Partition, txn: Transaction) -> BitVector:
        """Visibility vector of ``partition`` for transaction ``txn``."""
        return partition.visibility(txn.snapshot)

    def txn_visible_mask(self, partition: Partition, txn: Transaction) -> np.ndarray:
        """Numpy boolean visibility mask for ``txn`` (scan-side fast path)."""
        return partition.visible_mask(txn.snapshot)

    def txn_visible_rows(self, partition: Partition, txn: Transaction) -> np.ndarray:
        """Indices of rows of ``partition`` visible to ``txn``."""
        return partition.visible_rows(txn.snapshot)

    @property
    def txn_manager(self) -> TransactionManager:
        """The underlying transaction manager."""
        return self._txn_manager
