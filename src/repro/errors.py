"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch engine failures with a single ``except`` clause while
still being able to discriminate the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class SchemaError(ReproError):
    """A table schema is malformed or an operation violates it.

    Raised for duplicate column names, unknown column references during
    inserts, missing primary keys where one is required, and similar
    definition-time problems.
    """


class CatalogError(ReproError):
    """A table name could not be resolved or is already taken."""


class StorageError(ReproError):
    """Low-level storage invariant violation (partition/column/dictionary)."""


class TransactionError(ReproError):
    """Misuse of the transaction API (e.g. writing through a closed txn)."""


class IntegrityError(ReproError):
    """A data integrity constraint was violated.

    Covers primary-key duplicates, referential-integrity failures, and
    matching-dependency enforcement failures (a foreign key whose parent
    tuple does not exist).
    """


class QueryError(ReproError):
    """A query is semantically invalid for the current catalog.

    Examples: unknown table alias, unknown column, disconnected join graph,
    aggregate of a non-numeric column.
    """


class SqlSyntaxError(QueryError):
    """The SQL text could not be parsed.

    Carries the character ``position`` of the offending token so callers can
    point at the error location.
    """

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class QueryAborted(ReproError):
    """A query was stopped at a cooperative cancellation checkpoint.

    The abort is clean: any auto-started transaction is released, held
    read locks are dropped, and no partial cache entry, delta-memo
    advance, or statistics update survives the aborted run.
    """


class QueryTimeout(QueryAborted):
    """The query's deadline expired before it finished.

    Carries ``timeout_ms``, the budget the query was admitted with.
    """

    def __init__(self, message: str, timeout_ms: float = 0.0):
        super().__init__(message)
        self.timeout_ms = timeout_ms


class QueryCancelled(QueryAborted):
    """The query's :class:`~repro.governor.CancelToken` was cancelled."""


class WriteRejectedError(ReproError):
    """The database is WAL-degraded: writes are rejected, reads served.

    Raised by every mutating entry point while the durability circuit
    breaker is open.  Clients should back off and retry; the breaker
    half-opens after its cooldown and lets a probe write through.
    """


class DurabilityError(ReproError):
    """The write-ahead log or a checkpoint is unusable.

    Raised for WAL corruption that is *not* a torn tail record (a torn tail
    is tolerated and truncated during recovery), unreadable checkpoints, and
    durability features that cannot be provided (e.g. persisting a table
    whose aging rule is a Python callable).
    """


class FaultError(ReproError):
    """An armed fault point fired in ``raise`` mode (fault injection)."""


class CacheError(ReproError):
    """The aggregate cache was asked to do something unsupported.

    For example caching a query with non-self-maintainable aggregate
    functions (MIN/MAX), or compensating an entry whose base tables have
    been dropped.
    """


class UnsupportedQueryError(CacheError):
    """The query does not qualify for the aggregate cache (Section 2.1)."""


class ObservabilityError(ReproError):
    """Misuse of the observability layer.

    Duplicate metric registration, a decreasing counter, mismatched label
    sets, or malformed Prometheus text handed to the parser.
    """
