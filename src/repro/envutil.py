"""Shared parsing for ``REPRO_*`` environment knobs.

Every knob follows the same contract (generalized from the original
``REPRO_N_WORKERS`` handling in :mod:`repro.query.parallel`):

* unset or empty → the caller's default;
* malformed (not a number) → warn **once per variable per process** and
  fall back to the default — silently ignoring it would leave a typo like
  ``REPRO_QUERY_TIMEOUT_MS=1oo`` undetected, while warning on every
  ``Database()`` construction would drown real output;
* well-formed but out of range → raise ``ValueError`` outright: unlike a
  typo it expresses clear intent, and guessing what the caller meant
  would mask the misconfiguration.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Callable, Optional, TypeVar

Number = TypeVar("Number", int, float)

# Variables already warned about, so each malformed knob warns exactly
# once per process no matter how many Databases consult it.
_warned: set = set()
_warned_lock = threading.Lock()


def _reset_warnings() -> None:
    """Forget which variables warned — test hook only."""
    with _warned_lock:
        _warned.clear()


def _parse(
    name: str,
    default: Optional[Number],
    convert: Callable[[str], Number],
    kind: str,
    minimum: Optional[Number],
) -> Optional[Number]:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = convert(raw)
    except ValueError:
        with _warned_lock:
            first = name not in _warned
            _warned.add(name)
        if first:
            warnings.warn(
                f"ignoring malformed {name}={raw!r} (not {kind}); "
                f"falling back to the default ({default!r})",
                RuntimeWarning,
                stacklevel=3,
            )
        return default
    if minimum is not None and value < minimum:
        raise ValueError(
            f"{name}={raw!r}: the value must be >= {minimum} "
            "(unset the variable for the default)"
        )
    return value


def env_int(
    name: str,
    default: Optional[int] = None,
    minimum: Optional[int] = None,
) -> Optional[int]:
    """Read an integer knob from the environment (contract above)."""
    return _parse(name, default, int, "an integer", minimum)


def env_float(
    name: str,
    default: Optional[float] = None,
    minimum: Optional[float] = None,
) -> Optional[float]:
    """Read a float knob from the environment (contract above)."""
    return _parse(name, default, float, "a number", minimum)
