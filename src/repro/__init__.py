"""repro — reproduction of "Using Object-Awareness to Optimize Join
Processing in the SAP HANA Aggregate Cache" (EDBT 2015).

The package implements, from scratch, a columnar in-memory database with the
delta-main architecture, an aggregate cache with main/delta compensation,
and the paper's object-aware join optimizations (matching dependencies,
dynamic join pruning, join predicate pushdown, hot/cold multi-partition
pruning), plus the workloads and benchmark harnesses that regenerate every
figure of the paper's evaluation.

Most applications only need :class:`Database` and
:class:`ExecutionStrategy`; see the README quickstart.
"""

from .core import (
    AlwaysAdmit,
    CacheConfig,
    ExecutionStrategy,
    LruEviction,
    MaintenanceMode,
    MatchingDependency,
    ProfitAdmission,
    ProfitEviction,
)
from .database import Database
from .errors import (
    CacheError,
    CatalogError,
    DurabilityError,
    FaultError,
    IntegrityError,
    QueryAborted,
    QueryCancelled,
    QueryError,
    QueryTimeout,
    ReproError,
    SchemaError,
    SqlSyntaxError,
    StorageError,
    TransactionError,
    UnsupportedQueryError,
    WriteRejectedError,
)
from .concurrency import ReadWriteLock
from .governor import (
    CancelToken,
    Deadline,
    GovernorConfig,
    HealthReport,
    ResourceGovernor,
)
from .obs import EngineMetrics, MetricsRegistry, QueryTrace, Span, parse_prometheus
from .query import AggregateQuery, ParallelConfig, QueryResult, parse_sql
from .reliability import FaultInjector, SimulatedCrash
from .storage import ColumnDef, Schema, SqlType, ratio_aging, threshold_aging, tid_column

__version__ = "1.0.0"

__all__ = [
    "AggregateQuery",
    "AlwaysAdmit",
    "CacheConfig",
    "CacheError",
    "CancelToken",
    "CatalogError",
    "ColumnDef",
    "Database",
    "Deadline",
    "DurabilityError",
    "EngineMetrics",
    "ExecutionStrategy",
    "FaultError",
    "FaultInjector",
    "GovernorConfig",
    "HealthReport",
    "IntegrityError",
    "LruEviction",
    "MaintenanceMode",
    "MatchingDependency",
    "MetricsRegistry",
    "ParallelConfig",
    "ProfitAdmission",
    "ProfitEviction",
    "QueryAborted",
    "QueryCancelled",
    "QueryError",
    "QueryResult",
    "QueryTimeout",
    "QueryTrace",
    "ReadWriteLock",
    "ReproError",
    "ResourceGovernor",
    "Schema",
    "SchemaError",
    "SimulatedCrash",
    "Span",
    "SqlSyntaxError",
    "SqlType",
    "StorageError",
    "TransactionError",
    "UnsupportedQueryError",
    "WriteRejectedError",
    "parse_prometheus",
    "parse_sql",
    "ratio_aging",
    "threshold_aging",
    "tid_column",
]
