"""System monitoring views: storage, cache, and enforcement statistics.

The equivalents of a DBMS's monitoring views (``M_CS_TABLES``-style), built
from live engine state: per-partition row counts and byte sizes, aggregate
cache occupancy and lifetime hit/miss/eviction counters, and matching-
dependency enforcement activity.  ``Database.statistics()`` returns the
structured snapshot; ``render()`` formats it for humans (the shell and the
examples use it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .database import Database
from .governor import HealthReport


@dataclass
class PartitionStats:
    """Snapshot of one partition: rows, visibility, bytes, invalidations."""

    name: str
    kind: str
    rows: int
    visible_rows: int
    bytes: int
    invalidation_epoch: int
    #: "resident" or "mapped" (memory-mapped cold tier); the byte split
    #: satisfies ``resident_bytes + mapped_bytes == bytes``.
    tier: str = "resident"
    resident_bytes: int = 0
    mapped_bytes: int = 0


@dataclass
class TableStats:
    """Snapshot of one table across its partitions."""

    name: str
    table_id: int
    aged: bool
    partitions: List[PartitionStats] = field(default_factory=list)

    @property
    def total_rows(self) -> int:
        """Physical rows across all partitions."""
        return sum(p.rows for p in self.partitions)

    @property
    def total_bytes(self) -> int:
        """Approximate bytes across all partitions."""
        return sum(p.bytes for p in self.partitions)

    @property
    def delta_fill(self) -> float:
        """Fraction of physical rows currently sitting in delta partitions —
        the merge-urgency signal."""
        delta_rows = sum(p.rows for p in self.partitions if p.kind == "delta")
        total = self.total_rows
        return delta_rows / total if total else 0.0


@dataclass
class CacheStats:
    """Aggregate cache occupancy and lifetime counters."""

    entries: int
    total_value_bytes: int
    total_hits: int
    total_misses: int
    total_evictions: int
    total_maintenance_runs: int
    # Delta-compensation memo routing (see repro.core.delta_memo).
    memo_hits: int = 0  # incremental reuses
    memo_misses: int = 0  # full rebuilds
    memo_bypass: int = 0
    #: Total bytes the memory budget tracks (entries + memos + recycler +
    #: plan/parse estimates + cold overhead), from the same locked snapshot
    #: as the counters above.
    tracked_bytes: int = 0
    # Cross-query subjoin recycler (see repro.core.recycler).
    recycler_entries: int = 0
    recycler_bytes: int = 0
    recycler_hits: int = 0
    recycler_misses: int = 0
    recycler_stale: int = 0
    recycler_evictions: int = 0
    # Proactive cardinality-based refreshes (see repro.core.maintenance).
    refresh_advances: int = 0
    refresh_rebuilds: int = 0

    @property
    def hit_rate(self) -> float:
        """Lifetime hits / (hits + misses), 0.0 before any lookup."""
        lookups = self.total_hits + self.total_misses
        return self.total_hits / lookups if lookups else 0.0

    @property
    def memo_hit_rate(self) -> float:
        """Incremental reuses / routed compensations, 0.0 before any."""
        routed = self.memo_hits + self.memo_misses + self.memo_bypass
        return self.memo_hits / routed if routed else 0.0

    @property
    def recycler_hit_rate(self) -> float:
        """Recycler hits / probes, 0.0 before any probe."""
        probes = self.recycler_hits + self.recycler_misses + self.recycler_stale
        return self.recycler_hits / probes if probes else 0.0


@dataclass
class EnforcementSnapshot:
    """Matching-dependency enforcement activity counters."""

    matching_dependencies: int
    parent_stamps: int
    child_lookups: int
    lookups_failed: int


@dataclass
class DurabilityStats:
    """WAL append counters plus what the last recovery replayed.

    Only present for durable databases (``Database(path=...)``); an
    in-memory engine has nothing to fsync and nothing to recover.
    """

    path: str
    wal_records_appended: int
    wal_transactions_logged: int
    wal_merges_logged: int
    wal_bytes_written: int
    wal_last_lsn: int
    checkpoints_written: int
    recovered: bool  # True when opening found previous state to replay
    recovery_checkpoint_lsn: Optional[int] = None
    recovery_records_replayed: int = 0
    recovery_transactions_replayed: int = 0
    recovery_merges_replayed: int = 0
    recovery_torn_records_dropped: int = 0
    recovered_tid: int = 0


@dataclass
class DatabaseStats:
    """One consistent snapshot of engine statistics."""

    snapshot_tid: int
    tables: List[TableStats]
    cache: CacheStats
    enforcement: EnforcementSnapshot
    durability: Optional[DurabilityStats] = None
    #: The resource governor's health snapshot (breaker states, degraded
    #: modes, abort/retry/shed counters); see :mod:`repro.governor`.
    health: Optional[HealthReport] = None
    #: Flat ``{name{labels}: value}`` view of the metrics registry at
    #: snapshot time (empty when observability is disabled).
    metrics: Dict[str, float] = field(default_factory=dict)

    def table(self, name: str) -> TableStats:
        """The stats of one table by name (KeyError if absent)."""
        for stats in self.tables:
            if stats.name == name:
                return stats
        raise KeyError(name)

    def render(self) -> str:
        """Human-readable multi-line rendering of the snapshot."""
        lines = [f"snapshot: tid {self.snapshot_tid}", "", "tables:"]
        for table in self.tables:
            lines.append(
                f"  {table.name} (id {table.table_id}"
                f"{', aged' if table.aged else ''}) — "
                f"{table.total_rows} rows, ~{table.total_bytes} B, "
                f"delta fill {table.delta_fill:.1%}"
            )
            for part in table.partitions:
                tier = (
                    f" tier=mapped (~{part.mapped_bytes}B on disk)"
                    if part.tier == "mapped"
                    else ""
                )
                lines.append(
                    f"    {part.name:<12} {part.kind:<5} rows={part.rows} "
                    f"visible={part.visible_rows} ~{part.bytes}B "
                    f"invalidations={part.invalidation_epoch}{tier}"
                )
        cache = self.cache
        lines += [
            "",
            "aggregate cache:",
            f"  entries={cache.entries} value-bytes~{cache.total_value_bytes} "
            f"hits={cache.total_hits} misses={cache.total_misses} "
            f"hit-rate={cache.hit_rate:.1%} evictions={cache.total_evictions} "
            f"maintenance-runs={cache.total_maintenance_runs}",
            f"  delta-memo: incremental={cache.memo_hits} "
            f"full={cache.memo_misses} bypass={cache.memo_bypass} "
            f"incremental-rate={cache.memo_hit_rate:.1%}",
            f"  recycler: entries={cache.recycler_entries} "
            f"~{cache.recycler_bytes}B hits={cache.recycler_hits} "
            f"misses={cache.recycler_misses} stale={cache.recycler_stale} "
            f"hit-rate={cache.recycler_hit_rate:.1%} "
            f"evictions={cache.recycler_evictions}",
            f"  refresh: advances={cache.refresh_advances} "
            f"rebuilds={cache.refresh_rebuilds}",
            "",
            "matching dependencies:",
            f"  declared={self.enforcement.matching_dependencies} "
            f"parent-stamps={self.enforcement.parent_stamps} "
            f"child-lookups={self.enforcement.child_lookups} "
            f"failed-lookups={self.enforcement.lookups_failed}",
        ]
        if self.durability is not None:
            d = self.durability
            lines += [
                "",
                "durability:",
                f"  wal@{d.path}: records={d.wal_records_appended} "
                f"txns={d.wal_transactions_logged} merges={d.wal_merges_logged} "
                f"~{d.wal_bytes_written}B last-lsn={d.wal_last_lsn} "
                f"checkpoints={d.checkpoints_written}",
            ]
            if d.recovered:
                ckpt = (
                    f"checkpoint-lsn={d.recovery_checkpoint_lsn}"
                    if d.recovery_checkpoint_lsn is not None
                    else "no-checkpoint"
                )
                lines.append(
                    f"  recovered: {ckpt} records={d.recovery_records_replayed} "
                    f"txns={d.recovery_transactions_replayed} "
                    f"merges={d.recovery_merges_replayed} "
                    f"torn-dropped={d.recovery_torn_records_dropped} "
                    f"tid={d.recovered_tid}"
                )
        if self.health is not None:
            lines += ["", "health:"]
            lines += [f"  {line}" for line in self.health.render().splitlines()]
        if self.metrics:
            lines += ["", "metrics:"]
            for name, value in sorted(self.metrics.items()):
                # Histogram bucket samples are a scrape-format detail; the
                # _sum/_count pair already summarizes each histogram.
                if "_bucket{" in name:
                    continue
                lines.append(f"  {name} {value:g}")
        return "\n".join(lines)


def collect_statistics(db: Database) -> DatabaseStats:
    """Take a statistics snapshot of ``db``."""
    snapshot = db.transactions.global_snapshot()
    tables: List[TableStats] = []
    for name in db.catalog.table_names():
        table = db.table(name)
        stats = TableStats(name=name, table_id=table.table_id, aged=table.is_aged())
        for partition in table.partitions():
            stats.partitions.append(
                PartitionStats(
                    name=partition.name,
                    kind=partition.kind,
                    rows=partition.row_count,
                    visible_rows=partition.visible_count(snapshot),
                    bytes=partition.nbytes(),
                    invalidation_epoch=partition.invalidation_epoch,
                    tier=partition.storage_tier,
                    resident_bytes=partition.nbytes_resident(),
                    mapped_bytes=partition.nbytes_mapped(),
                )
            )
        tables.append(stats)
    manager = db.cache
    # One locked snapshot of the lifetime counters: reading the attributes
    # one by one could interleave with a concurrent query's bookkeeping and
    # report e.g. more hits than lookups.  ``value_bytes`` comes from the
    # same snapshot — computing it from a separate ``manager.entries()``
    # call would take the lock a second time, and entries created or
    # evicted in between would make the byte total disagree with
    # ``entries`` (a torn read).
    counters = manager.counters_snapshot()
    cache = CacheStats(
        entries=counters["entries"],
        total_value_bytes=counters["value_bytes"],
        total_hits=counters["hits"],
        total_misses=counters["misses"],
        total_evictions=counters["evictions"],
        total_maintenance_runs=counters["maintenance_runs"],
        memo_hits=counters["memo_hits"],
        memo_misses=counters["memo_misses"],
        memo_bypass=counters["memo_bypass"],
        tracked_bytes=counters["tracked_bytes"],
        recycler_entries=counters["recycler_entries"],
        recycler_bytes=counters["recycler_bytes"],
        recycler_hits=counters["recycler_hits"],
        recycler_misses=counters["recycler_misses"],
        recycler_stale=counters["recycler_stale"],
        recycler_evictions=counters["recycler_evictions"],
        refresh_advances=counters["refresh_advances"],
        refresh_rebuilds=counters["refresh_rebuilds"],
    )
    enforcement = EnforcementSnapshot(
        matching_dependencies=len(db.enforcer.dependencies()),
        parent_stamps=db.enforcer.stats.parent_stamps,
        child_lookups=db.enforcer.stats.child_lookups,
        lookups_failed=db.enforcer.stats.lookups_failed,
    )
    durability: Optional[DurabilityStats] = None
    if db.wal is not None:
        wal_stats = db.wal.stats
        recovery = db.recovery_stats
        recovered = recovery is not None and (
            recovery.records_scanned > 0 or recovery.checkpoint_lsn is not None
        )
        durability = DurabilityStats(
            path=str(db.path),
            wal_records_appended=wal_stats.records_appended,
            wal_transactions_logged=wal_stats.transactions_logged,
            wal_merges_logged=wal_stats.merges_logged,
            wal_bytes_written=wal_stats.bytes_written,
            wal_last_lsn=wal_stats.last_lsn,
            checkpoints_written=wal_stats.checkpoints_written,
            recovered=recovered,
        )
        if recovery is not None:
            durability.recovery_checkpoint_lsn = recovery.checkpoint_lsn
            durability.recovery_records_replayed = recovery.records_replayed
            durability.recovery_transactions_replayed = recovery.transactions_replayed
            durability.recovery_merges_replayed = recovery.merges_replayed
            durability.recovery_torn_records_dropped = recovery.torn_records_dropped
            durability.recovered_tid = recovery.recovered_tid
    return DatabaseStats(
        snapshot_tid=snapshot,
        tables=tables,
        cache=cache,
        enforcement=enforcement,
        durability=durability,
        # The byte reading comes from the counters snapshot above — a
        # separate manager.tracked_bytes() call would take the manager
        # lock a second time, and a shed or insert between the two takes
        # would make the health view disagree with the cache stats (the
        # same torn-read class the single-snapshot counters fix closed).
        health=db.governor.health(tracked_bytes=counters["tracked_bytes"]),
        metrics=db.metrics_snapshot(),
    )
