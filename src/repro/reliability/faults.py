"""Fault-injection harness for crash-safety testing.

The durability code paths are instrumented with *named fault points* —
``injector.fire("merge.before_swap")`` calls sprinkled at the moments where
a crash would be most damaging.  Tests arm a point with a failure mode and
drive the engine until the fault trips:

* ``raise`` — raise :class:`~repro.errors.FaultError`, modelling a clean
  I/O failure the caller is expected to handle (disk full, permission);
* ``crash`` — raise :class:`SimulatedCrash`, modelling ``kill -9``: the
  database object must be abandoned and reopened via ``Database.open``.
  Instrumented writers may emulate a torn write before re-raising (the WAL
  flushes half of the in-flight record, like a real partial page write);
* ``delay`` — sleep, for schedule-perturbation tests.

``SimulatedCrash`` deliberately derives from ``BaseException`` so that the
engine's internal ``except Exception`` recovery paths cannot swallow it —
nothing survives a process kill.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import DurabilityError, FaultError


class SimulatedCrash(BaseException):
    """A simulated process kill at a fault point (not a ReproError)."""

    def __init__(self, point: str):
        super().__init__(f"simulated crash at fault point {point!r}")
        self.point = point


#: Fault points the engine fires, in rough workload order.
KNOWN_FAULT_POINTS = {
    "wal.append": "before a WAL record is written (crash => torn tail record)",
    "checkpoint.write": "before a checkpoint file is materialized",
    "merge.stage": "before a partition group's new main/delta is built",
    "merge.before_swap": "after staging, before any group is swapped in",
    "merge.after_swap": "after the swap, before the merge becomes durable",
    "cache.maintenance": "while the aggregate cache plans merge maintenance",
    "txn.commit": "before a transaction's WAL record is flushed",
}


def register_fault_point(name: str, description: str = "") -> None:
    """Declare an additional fault point (extensions / tests)."""
    KNOWN_FAULT_POINTS.setdefault(name, description)


@dataclass
class _ArmedFault:
    mode: str  # "raise" | "crash" | "delay"
    times: int  # how many trips before the fault disarms itself
    after: int  # hits to skip before tripping
    delay: float
    message: Optional[str]
    trips: int = 0
    skipped: int = 0


@dataclass
class FaultInjector:
    """Per-database registry of armed fault points.

    Every :class:`~repro.database.Database` carries one (an unarmed injector
    is a handful of dict lookups per fire — negligible).  ``hits`` counts
    every ``fire`` call per point whether armed or not, so tests can assert
    a code path actually passed through its instrumentation.
    """

    _armed: Dict[str, _ArmedFault] = field(default_factory=dict)
    hits: Dict[str, int] = field(default_factory=dict)

    def arm(
        self,
        point: str,
        mode: str = "raise",
        times: int = 1,
        after: int = 0,
        delay: float = 0.0,
        message: Optional[str] = None,
    ) -> None:
        """Arm ``point``; it trips ``times`` times after skipping ``after`` hits."""
        if point not in KNOWN_FAULT_POINTS:
            raise DurabilityError(
                f"unknown fault point {point!r}; known: "
                f"{sorted(KNOWN_FAULT_POINTS)}"
            )
        if mode not in ("raise", "crash", "delay"):
            raise DurabilityError(f"unknown fault mode {mode!r}")
        self._armed[point] = _ArmedFault(
            mode=mode, times=times, after=after, delay=delay, message=message
        )

    def disarm(self, point: Optional[str] = None) -> None:
        """Disarm one point, or all of them."""
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def armed_points(self) -> List[str]:
        """Names of the currently armed points."""
        return sorted(self._armed)

    def fire(self, point: str) -> None:
        """Trip the fault armed at ``point``, if any (instrumentation hook)."""
        self.hits[point] = self.hits.get(point, 0) + 1
        fault = self._armed.get(point)
        if fault is None:
            return
        if fault.skipped < fault.after:
            fault.skipped += 1
            return
        if fault.trips >= fault.times:
            return
        fault.trips += 1
        if fault.mode == "delay":
            time.sleep(fault.delay)
            return
        if fault.mode == "crash":
            raise SimulatedCrash(point)
        raise FaultError(fault.message or f"injected fault at {point!r}")
