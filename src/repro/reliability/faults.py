"""Fault-injection harness for crash-safety and degradation testing.

The durability code paths are instrumented with *named fault points* —
``injector.fire("merge.before_swap")`` calls sprinkled at the moments where
a crash would be most damaging.  Tests arm a point with a failure mode and
drive the engine until the fault trips:

* ``raise`` — raise :class:`~repro.errors.FaultError`, modelling a clean
  I/O failure the caller is expected to handle (disk full, permission);
* ``io_error`` — raise :class:`TransientIOError` (an ``OSError``),
  modelling a *transient* kernel-level failure (EINTR, NFS hiccup,
  momentary ENOSPC) that retry/backoff machinery is expected to absorb;
* ``crash`` — raise :class:`SimulatedCrash`, modelling ``kill -9``: the
  database object must be abandoned and reopened via ``Database.open``.
  Instrumented writers may emulate a torn write before re-raising (the WAL
  flushes half of the in-flight record, like a real partial page write);
* ``delay`` — sleep, for schedule-perturbation and injected-latency tests.

Firing is shaped by three knobs that compose: ``after`` skips the first N
hits, ``times`` bounds the number of trips (``None`` = unlimited), and
``probability`` makes each eligible hit trip stochastically (seeded via
``FaultInjector(seed=...)`` for reproducible chaos runs).

``SimulatedCrash`` deliberately derives from ``BaseException`` so that the
engine's internal ``except Exception`` recovery paths cannot swallow it —
nothing survives a process kill.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import DurabilityError, FaultError


class SimulatedCrash(BaseException):
    """A simulated process kill at a fault point (not a ReproError)."""

    def __init__(self, point: str):
        super().__init__(f"simulated crash at fault point {point!r}")
        self.point = point


class TransientIOError(OSError):
    """An injected transient I/O failure (``io_error`` mode).

    Deliberately an ``OSError`` — not a ``ReproError`` — so it travels the
    exact code path a real kernel-level failure would: caught by the
    retry/backoff wrappers around WAL appends and checkpoint writes, and
    escalated to :class:`~repro.errors.DurabilityError` only once the
    retry budget is exhausted.
    """

    def __init__(self, point: str, message: Optional[str] = None):
        super().__init__(message or f"injected transient I/O error at {point!r}")
        self.point = point


#: Fault points the engine fires, in rough workload order.
KNOWN_FAULT_POINTS = {
    "wal.append": "before a WAL record is written (crash => torn tail record)",
    "checkpoint.write": "before a checkpoint file is materialized",
    "merge.stage": "before a partition group's new main/delta is built",
    "merge.before_swap": "after staging, before any group is swapped in",
    "merge.after_swap": "after the swap, before the merge becomes durable",
    "cache.maintenance": "while the aggregate cache plans merge maintenance",
    "cache.compensation": "while a cached query compensates against the deltas",
    "txn.commit": "before a transaction's WAL record is flushed",
}

_MODES = ("raise", "crash", "delay", "io_error")


def register_fault_point(name: str, description: str = "") -> None:
    """Declare an additional fault point (extensions / tests)."""
    KNOWN_FAULT_POINTS.setdefault(name, description)


@dataclass
class _ArmedFault:
    mode: str  # "raise" | "crash" | "delay" | "io_error"
    times: Optional[int]  # trips before the fault disarms itself; None = forever
    after: int  # hits to skip before tripping
    delay: float
    probability: Optional[float]  # None = every eligible hit trips
    message: Optional[str]
    trips: int = 0
    skipped: int = 0


@dataclass
class FaultInjector:
    """Per-database registry of armed fault points.

    Every :class:`~repro.database.Database` carries one (an unarmed injector
    is a dict lookup and an increment per fire — negligible).  ``hits``
    counts every ``fire`` call per point whether armed or not, so tests can
    assert a code path actually passed through its instrumentation.

    ``seed`` fixes the RNG used for ``probability`` firing so chaos runs
    are reproducible.
    """

    _armed: Dict[str, _ArmedFault] = field(default_factory=dict)
    hits: Dict[str, int] = field(default_factory=dict)
    seed: Optional[int] = None

    def __post_init__(self):
        self._rng = random.Random(self.seed)

    def arm(
        self,
        point: str,
        mode: str = "raise",
        times: Optional[int] = 1,
        after: int = 0,
        delay: float = 0.0,
        probability: Optional[float] = None,
        message: Optional[str] = None,
    ) -> None:
        """Arm ``point``; it trips ``times`` times after skipping ``after`` hits.

        ``times=None`` never self-disarms; ``probability=p`` makes each
        eligible hit trip with probability ``p`` instead of always.
        """
        if point not in KNOWN_FAULT_POINTS:
            raise DurabilityError(
                f"unknown fault point {point!r}; known: "
                f"{sorted(KNOWN_FAULT_POINTS)}"
            )
        if mode not in _MODES:
            raise DurabilityError(f"unknown fault mode {mode!r}")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise DurabilityError(
                f"fault probability must be in [0, 1], got {probability!r}"
            )
        self._armed[point] = _ArmedFault(
            mode=mode,
            times=times,
            after=after,
            delay=delay,
            probability=probability,
            message=message,
        )

    def disarm(self, point: Optional[str] = None) -> None:
        """Disarm one point, or all of them."""
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def armed_points(self) -> List[str]:
        """Names of the currently armed points."""
        return sorted(self._armed)

    def fire(self, point: str) -> None:
        """Trip the fault armed at ``point``, if any (instrumentation hook)."""
        self.hits[point] = self.hits.get(point, 0) + 1
        if not self._armed:
            return  # fast path: unarmed injectors stay off the hot path
        fault = self._armed.get(point)
        if fault is None:
            return
        if fault.skipped < fault.after:
            fault.skipped += 1
            return
        if fault.times is not None and fault.trips >= fault.times:
            return
        if fault.probability is not None and self._rng.random() >= fault.probability:
            return
        fault.trips += 1
        if fault.mode == "delay":
            time.sleep(fault.delay)
            return
        if fault.mode == "crash":
            raise SimulatedCrash(point)
        if fault.mode == "io_error":
            raise TransientIOError(point, fault.message)
        raise FaultError(fault.message or f"injected fault at {point!r}")
