"""Crash safety: write-ahead logging, checkpoints, recovery, fault injection.

The delta merge is only a safe anchor for aggregate-cache maintenance if it
is atomic and repeatable (Krueger et al.'s merge, the precondition of the
paper's Section 5.2 piggy-backing; Funke et al. make the same assumption
for compaction).  This package supplies the machinery that makes the whole
engine hold that property across process kills:

* :mod:`wal` — CRC-checked JSON-lines write-ahead log, fsynced per commit;
* :mod:`checkpoint` — atomic full-state snapshots written at merge time;
* :mod:`recovery` — checkpoint restore + WAL replay with torn-tail handling;
* :mod:`faults` — named fault points (``wal.append``,
  ``merge.before_swap``, ...) that raise, crash, or delay on demand, driving
  the kill-point recovery tests.
"""

from .checkpoint import (
    latest_valid_checkpoint,
    list_checkpoints,
    read_checkpoint,
    restore_checkpoint,
    write_checkpoint,
)
from .faults import (
    KNOWN_FAULT_POINTS,
    FaultInjector,
    SimulatedCrash,
    register_fault_point,
)
from .recovery import RecoveryStats, recover_database
from .wal import WalRecord, WalScan, WalStats, WriteAheadLog

__all__ = [
    "FaultInjector",
    "KNOWN_FAULT_POINTS",
    "RecoveryStats",
    "SimulatedCrash",
    "WalRecord",
    "WalScan",
    "WalStats",
    "WriteAheadLog",
    "latest_valid_checkpoint",
    "list_checkpoints",
    "read_checkpoint",
    "recover_database",
    "register_fault_point",
    "restore_checkpoint",
    "write_checkpoint",
]
