"""Crash recovery: latest checkpoint + WAL replay.

``recover_database`` rebuilds a durable database's state inside a freshly
constructed (empty) :class:`~repro.database.Database`:

1. load the newest valid checkpoint, if any (full table state, matching
   dependencies, tid high-water mark);
2. replay every WAL record with ``lsn > checkpoint.last_lsn`` in order —
   DDL through the normal ``Database`` methods (with WAL logging
   suspended), DML at the table level (logged rows are already
   matching-dependency-stamped, so re-running enforcement would be wrong),
   merges by re-running ``merge_table`` at the logged snapshot, which is
   deterministic given the replayed data;
3. tolerate exactly one torn tail record (truncated before new appends);
4. fast-forward the transaction manager past every replayed tid so new
   transactions continue the id sequence (`TransactionManager.advance_to`).

Aggregate-cache entries are deliberately **dropped** across recovery and
re-admitted on first use: entry visibility snapshots reference in-memory
partition objects that did not survive the crash, and rebuilding them
eagerly would recompute aggregates nobody may ever ask for again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import DurabilityError
from ..storage.merge import merge_table
from .checkpoint import latest_valid_checkpoint, restore_checkpoint
from .wal import WalScan, WriteAheadLog


@dataclass
class RecoveryStats:
    """What one recovery pass did (surfaced via ``Database.statistics()``)."""

    checkpoint_lsn: Optional[int] = None
    records_scanned: int = 0
    records_replayed: int = 0
    transactions_replayed: int = 0
    operations_replayed: int = 0
    merges_replayed: int = 0
    ddl_replayed: int = 0
    torn_records_dropped: int = 0
    recovered_tid: int = 0


def recover_database(db, wal: WriteAheadLog, checkpoint_dir) -> RecoveryStats:
    """Restore ``db`` (empty, durable, ``_replaying`` already set) from disk."""
    stats = RecoveryStats()
    checkpoint = latest_valid_checkpoint(checkpoint_dir)
    if checkpoint is not None:
        state, _ = checkpoint
        restore_checkpoint(db, state)
        stats.checkpoint_lsn = state["last_lsn"]
        stats.recovered_tid = state["latest_tid"]
    scan = wal.scan()
    stats.records_scanned = len(scan.records)
    stats.torn_records_dropped = scan.torn_records_dropped
    start_lsn = stats.checkpoint_lsn or 0
    max_tid = stats.recovered_tid
    for record in scan.records:
        if record.lsn <= start_lsn:
            continue
        max_tid = max(max_tid, _replay_record(db, record, stats))
        stats.records_replayed += 1
    db.transactions.advance_to(max_tid)
    stats.recovered_tid = max_tid
    wal.open_for_append(scan)
    return stats


def _replay_record(db, record, stats: RecoveryStats) -> int:
    """Apply one WAL record; returns the highest tid it carries (0 if none)."""
    data = record.data
    if record.type == "txn":
        stats.transactions_replayed += 1
        for op in data["ops"]:
            _replay_op(db, op)
            stats.operations_replayed += 1
        return int(data["tid"])
    if record.type == "merge":
        stats.merges_replayed += 1
        merge_table(
            db.catalog.table(data["table"]),
            data["snapshot"],
            listeners=[db.cache],
            group_name=data["group"],
            keep_history=data["keep_history"],
        )
        return int(data["snapshot"])
    if record.type == "create_table":
        stats.ddl_replayed += 1
        from ..storage.schema import ColumnDef, Schema, SqlType

        schema = Schema(
            [
                ColumnDef(
                    column["name"],
                    SqlType(column["type"]),
                    nullable=column["nullable"],
                    is_tid=column["is_tid"],
                )
                for column in data["columns"]
            ],
            primary_key=data["primary_key"],
        )
        from ..storage.aging import aging_rule_from_spec

        db.create_table(
            data["name"],
            schema,
            aging_rule=aging_rule_from_spec(data.get("aging")),
            separate_update_delta=data["separate_update_delta"],
        )
        return 0
    if record.type == "drop_table":
        stats.ddl_replayed += 1
        db.drop_table(data["name"])
        return 0
    if record.type == "add_md":
        stats.ddl_replayed += 1
        db.add_matching_dependency(
            data["parent_table"],
            data["parent_key"],
            data["child_table"],
            data["child_fk"],
            tid_column_name=data["tid_column"],
        )
        return 0
    if record.type == "consistent_aging":
        stats.ddl_replayed += 1
        db.declare_consistent_aging(data["left"], data["right"])
        return 0
    raise DurabilityError(
        f"unknown WAL record type {record.type!r} at lsn {record.lsn}"
    )


def _replay_op(db, op: Dict) -> None:
    table = db.catalog.table(op["table"])
    kind = op["op"]
    if kind == "insert":
        table.insert(op["row"], op["tid"])
    elif kind == "update":
        table.update(op["pk"], op["changes"], op["tid"])
    elif kind == "delete":
        table.delete(op["pk"], op["tid"])
    else:
        raise DurabilityError(f"unknown WAL operation {kind!r}")
