"""Checkpoints: atomic full-state snapshots anchoring WAL replay.

A checkpoint is one self-contained JSON file,
``checkpoints/checkpoint_<lsn>.json``, capturing everything recovery needs:
table schemas and ids, every partition's rows with their MVCC ``cts``/``dts``
stamps, the registered matching dependencies and consistent-aging
declarations, the transaction high-water mark, and ``last_lsn`` — the WAL
position the snapshot includes.  Recovery loads the newest *valid*
checkpoint and replays only WAL records with a larger lsn.

Atomicity: the file is written to a temporary sibling, fsynced, and
``os.replace``d into place, so a crash mid-checkpoint leaves at worst a
stray ``*.tmp`` and the previous checkpoint intact.  A CRC over the payload
guards against torn or bit-rotted checkpoint files; an invalid newest
checkpoint is skipped in favor of the next older one (recovery then simply
replays more WAL).

The engine checkpoints after every delta merge: the merge has just rewritten
the bulk of the data anyway, and an up-to-date checkpoint keeps the replay
suffix short — the same piggy-backing the aggregate cache does for its
maintenance.

Aging rules built from the library constructors (``threshold_aging`` /
``ratio_aging``) are frozen dataclasses with a ``to_spec()`` JSON form, so
aged tables round-trip through checkpoints; arbitrary callable rules cannot
be serialized and durable databases refuse them at ``create_table`` time.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..errors import DurabilityError
from ..storage.aging import aging_rule_from_spec, aging_rule_spec
from ..storage.partition import LIVE, Partition
from ..storage.schema import ColumnDef, Schema, SqlType
from .faults import FaultInjector

_FORMAT_VERSION = 1
_NAME_RE = re.compile(r"^checkpoint_(\d+)\.json$")


def checkpoint_path(directory, last_lsn: int) -> Path:
    """Canonical path of the checkpoint covering the WAL up to ``last_lsn``."""
    return Path(directory) / f"checkpoint_{last_lsn:012d}.json"


def write_checkpoint(
    db,
    directory,
    last_lsn: int,
    faults: Optional[FaultInjector] = None,
    retry=None,
    on_retry=None,
) -> Path:
    """Atomically write a checkpoint of ``db``; returns its path.

    With a :class:`~repro.governor.RetryPolicy` supplied, transient
    ``OSError``s (including injected ``io_error`` faults) during the file
    write are retried with backoff; the tmp-file + ``os.replace`` protocol
    makes every retry start from a clean slate, so a transient failure
    can never leave a half-visible checkpoint behind.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    state: Dict = {
        "format_version": _FORMAT_VERSION,
        "last_lsn": last_lsn,
        "latest_tid": db.transactions.global_snapshot(),
        "next_table_id": db.catalog._next_table_id,
        "tables": [],
        "matching_dependencies": [
            {
                "parent_table": md.parent_table,
                "parent_key": md.parent_key,
                "child_table": md.child_table,
                "child_fk": md.child_fk,
                "tid_column": md.tid_column,
            }
            for md in db.enforcer.dependencies()
        ],
        "consistent_agings": [
            {"left": decl.left_table, "right": decl.right_table}
            for decl in db.cache._agings
        ],
    }
    for name in db.catalog.table_names():
        table = db.table(name)
        aging = None
        if table.is_aged():
            aging = aging_rule_spec(table.aging_rule)
            if aging is None:
                raise DurabilityError(
                    f"table {name!r} uses a non-serializable aging rule; "
                    "use threshold_aging/ratio_aging for durable hot/cold tables"
                )
        state["tables"].append(
            {
                "name": name,
                "table_id": table.table_id,
                "aging": aging,
                "separate_update_delta": table.separate_update_delta,
                "primary_key": table.schema.primary_key,
                "columns": [
                    {
                        "name": column.name,
                        "type": column.sql_type.value,
                        "nullable": column.nullable,
                        "is_tid": column.is_tid,
                    }
                    for column in table.schema
                ],
                "partitions": [
                    {
                        "name": partition.name,
                        "kind": partition.kind,
                        "rows": [
                            partition.get_row(i) for i in range(partition.row_count)
                        ],
                        "cts": [int(v) for v in partition.cts_array()],
                        "dts": [int(v) for v in partition.dts_array()],
                    }
                    for partition in table.partitions()
                ],
            }
        )
    payload = json.dumps(state, sort_keys=True, separators=(",", ":"))
    document = json.dumps(
        {"crc": zlib.crc32(payload.encode("utf-8")), "state": state},
        sort_keys=True,
        separators=(",", ":"),
    )
    target = checkpoint_path(root, last_lsn)
    tmp = target.with_suffix(".tmp")

    def attempt() -> Path:
        if faults is not None:
            faults.fire("checkpoint.write")
        with tmp.open("w") as handle:
            handle.write(document)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        return target

    if retry is None:
        return attempt()
    return retry.call(attempt, retry_on=(OSError,), on_retry=on_retry)


def list_checkpoints(directory) -> List[Tuple[int, Path]]:
    """(last_lsn, path) of every checkpoint file, newest first."""
    root = Path(directory)
    if not root.is_dir():
        return []
    found = []
    for path in root.iterdir():
        match = _NAME_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found, reverse=True)


def read_checkpoint(path) -> Optional[Dict]:
    """The validated state dict of one checkpoint file, or None if invalid."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict) or "state" not in document:
        return None
    state = document["state"]
    payload = json.dumps(state, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(payload.encode("utf-8")) != document.get("crc"):
        return None
    if state.get("format_version") != _FORMAT_VERSION:
        return None
    return state


def latest_valid_checkpoint(directory) -> Optional[Tuple[Dict, Path]]:
    """Newest checkpoint that parses and CRC-verifies, or None."""
    for _, path in list_checkpoints(directory):
        state = read_checkpoint(path)
        if state is not None:
            return state, path
    return None


def restore_checkpoint(db, state: Dict) -> None:
    """Load checkpoint ``state`` into an empty durable ``db``."""
    if db.catalog.table_names():
        raise DurabilityError("cannot restore a checkpoint into a non-empty database")
    for spec in state["tables"]:
        schema = Schema(
            [
                ColumnDef(
                    column["name"],
                    SqlType(column["type"]),
                    nullable=column["nullable"],
                    is_tid=column["is_tid"],
                )
                for column in spec["columns"]
            ],
            primary_key=spec["primary_key"],
        )
        table = db.catalog.create_table(
            spec["name"],
            schema,
            aging_rule=aging_rule_from_spec(spec.get("aging")),
            separate_update_delta=spec["separate_update_delta"],
        )
        table.table_id = spec["table_id"]
        for part_spec in spec["partitions"]:
            _restore_partition(table, part_spec)
        table.rebuild_pk_index()
    for md_spec in state["matching_dependencies"]:
        db.add_matching_dependency(
            md_spec["parent_table"],
            md_spec["parent_key"],
            md_spec["child_table"],
            md_spec["child_fk"],
            tid_column_name=md_spec["tid_column"],
        )
    for aging_spec in state["consistent_agings"]:
        db.declare_consistent_aging(aging_spec["left"], aging_spec["right"])
    db.transactions.advance_to(state["latest_tid"])
    db.catalog._next_table_id = max(
        db.catalog._next_table_id, state["next_table_id"]
    )


def _restore_partition(table, spec: Dict) -> None:
    target = table.partition(spec["name"])
    rows = [table.schema.validate_row(row) for row in spec["rows"]]
    if target.kind == "main":
        rebuilt = Partition.build_main(
            spec["name"], table.schema, rows, spec["cts"], spec["dts"]
        )
        group = table._group_of_partition(spec["name"])
        group.main = rebuilt
    else:
        for row, created, invalidated in zip(rows, spec["cts"], spec["dts"]):
            row_idx = target.append_row(row, created)
            if invalidated != LIVE:
                target.invalidate(row_idx, invalidated)
