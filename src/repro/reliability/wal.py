"""The write-ahead log: committed work as CRC-checked JSON lines.

Every record is one line::

    {"crc": 2774340723, "data": {...}, "lsn": 7, "type": "txn"}

``crc`` is the CRC-32 of the canonical serialization of the record without
the ``crc`` field, so any torn or bit-flipped line is detected on replay.
Record types:

* ``txn`` — one *finished* transaction with every operation it applied
  (``insert`` rows are logged post-stamping, so replay needs no matching-
  dependency enforcement).  One record per transaction makes transaction
  atomicity trivial: a torn tail is exactly an unfinished transaction.
* ``create_table`` / ``drop_table`` / ``add_md`` / ``consistent_aging`` —
  auto-committed DDL.
* ``merge`` — a completed (swapped) delta merge of one table; replay re-runs
  the merge at the logged snapshot, which is deterministic.

Appends are flushed *and fsynced* before the commit returns — group commit
is future work; the engine optimizes for recoverability first.

Recovery reads the log sequentially.  A record that fails to parse or
CRC-verify is tolerated **only as the final record** (a torn tail from a
crash mid-append); the tail is truncated so later appends start clean.  A
bad record with valid records after it means real corruption and raises
:class:`~repro.errors.DurabilityError`.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import DurabilityError
from ..governor.retry import RetryPolicy
from .faults import FaultInjector, SimulatedCrash


def _encode(lsn: int, record_type: str, data: Dict) -> bytes:
    body = {"lsn": lsn, "type": record_type, "data": data}
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    body["crc"] = zlib.crc32(payload.encode("utf-8"))
    return (json.dumps(body, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def _decode(line: str) -> Optional["WalRecord"]:
    """Parse and CRC-verify one line; None if torn/corrupt."""
    try:
        body = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(body, dict) or "crc" not in body:
        return None
    crc = body.pop("crc")
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(payload.encode("utf-8")) != crc:
        return None
    try:
        return WalRecord(int(body["lsn"]), str(body["type"]), body["data"])
    except (KeyError, TypeError, ValueError):
        return None


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record."""

    lsn: int
    type: str
    data: Dict


@dataclass
class WalScan:
    """Result of reading a WAL file front to back."""

    records: List[WalRecord] = field(default_factory=list)
    valid_bytes: int = 0  # offset just past the last valid record
    torn_records_dropped: int = 0


@dataclass
class WalStats:
    """Lifetime append counters of one WAL handle (monitoring view)."""

    records_appended: int = 0
    transactions_logged: int = 0
    merges_logged: int = 0
    checkpoints_written: int = 0
    bytes_written: int = 0
    last_lsn: int = 0


class WriteAheadLog:
    """Append/scan handle for one ``wal.jsonl`` file."""

    def __init__(
        self,
        path,
        faults: Optional[FaultInjector] = None,
        obs=None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.path = Path(path)
        self._faults = faults if faults is not None else FaultInjector()
        self._fh = None
        self._next_lsn = 1
        self.stats = WalStats()
        # Optional EngineMetrics: append counters and the fsync latency
        # histogram, the dominant term in commit latency.
        self.obs = obs
        # Transient-OSError absorption; None disables retrying entirely.
        self.retry = retry if retry is not None else RetryPolicy()
        # Governor hooks (set by the Database facade): exhausted-retry
        # failures and durable successes feed the durability breaker,
        # individual retries feed the repro_governor_retries_total counter.
        self.on_append_failure: Optional[Callable[[BaseException], None]] = None
        self.on_append_success: Optional[Callable[[], None]] = None
        self.on_append_retry: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------
    # reading (recovery side)
    # ------------------------------------------------------------------
    def scan(self) -> WalScan:
        """Read every valid record; tolerate (and count) a torn tail."""
        scan = WalScan()
        if not self.path.exists():
            return scan
        pending_bad = False
        offset = 0
        with self.path.open("rb") as handle:
            for raw in handle:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    offset += len(raw)
                    continue
                record = _decode(line)
                if record is None or not raw.endswith(b"\n"):
                    # Possibly a torn tail — only acceptable if nothing
                    # valid follows.
                    pending_bad = True
                    offset += len(raw)
                    continue
                if pending_bad:
                    raise DurabilityError(
                        f"WAL {self.path} is corrupted: invalid record "
                        f"before lsn {record.lsn}"
                    )
                if scan.records and record.lsn <= scan.records[-1].lsn:
                    raise DurabilityError(
                        f"WAL {self.path} is corrupted: lsn {record.lsn} "
                        f"follows lsn {scan.records[-1].lsn}"
                    )
                scan.records.append(record)
                offset += len(raw)
                scan.valid_bytes = offset
        if pending_bad:
            scan.torn_records_dropped = 1
        return scan

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def open_for_append(self, scan: Optional[WalScan] = None) -> None:
        """Open the file for appending, truncating any torn tail first."""
        if self._fh is not None:
            return
        if scan is None:
            scan = self.scan()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists() and scan.torn_records_dropped:
            with self.path.open("rb+") as handle:
                handle.truncate(scan.valid_bytes)
        if scan.records:
            self._next_lsn = scan.records[-1].lsn + 1
            self.stats.last_lsn = scan.records[-1].lsn
        self._fh = self.path.open("ab")

    @property
    def is_open(self) -> bool:
        """True while the append handle is live."""
        return self._fh is not None

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def append(self, record_type: str, data: Dict) -> int:
        """Durably append one record; returns its lsn.

        A ``crash``-armed ``wal.append`` fault emulates a torn write: the
        first half of the record reaches the file before the "kill", which
        is exactly the torn tail recovery must cope with.

        Transient ``OSError``s (including injected ``io_error`` faults)
        are retried through the attached :class:`RetryPolicy` with
        backoff; a partially written record is truncated away before each
        retry so the retried append starts from a clean tail.  Exhausted
        retries escalate to :class:`~repro.errors.DurabilityError` and
        report to ``on_append_failure`` (the governor's durability
        breaker); every durable append reports to ``on_append_success``.
        """
        if self._fh is None:
            raise DurabilityError("WAL is not open for appending")
        lsn = self._next_lsn
        payload = _encode(lsn, record_type, data)

        def attempt() -> None:
            self._faults.fire("wal.append")
            self._write_durably(payload)

        try:
            if self.retry is not None:
                self.retry.call(
                    attempt, retry_on=(OSError,), on_retry=self._on_retry
                )
            else:
                attempt()
        except SimulatedCrash:
            self._fh.write(payload[: max(1, len(payload) // 2)])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            raise
        except OSError as err:
            if self.on_append_failure is not None:
                self.on_append_failure(err)
            raise DurabilityError(
                f"WAL append of lsn {lsn} failed after "
                f"{self.retry.attempts if self.retry else 1} attempt(s): {err}"
            ) from err
        if self.obs is not None:
            self.obs.wal_appends.inc()
            self.obs.wal_bytes.inc(len(payload))
        self._next_lsn = lsn + 1
        self.stats.records_appended += 1
        self.stats.bytes_written += len(payload)
        self.stats.last_lsn = lsn
        if self.on_append_success is not None:
            self.on_append_success()
        return lsn

    def _write_durably(self, payload: bytes) -> None:
        """Write + flush + fsync; roll back a partial write on failure.

        Truncating back to the pre-write offset keeps a failed attempt
        invisible: without it, a retry after a partial write would leave
        torn garbage *before* a valid record, which recovery correctly
        refuses as corruption.
        """
        offset = self._fh.tell()
        try:
            self._fh.write(payload)
            self._fh.flush()
            fsync_started = time.perf_counter()
            os.fsync(self._fh.fileno())
        except OSError:
            try:
                self._fh.flush()
                self._fh.truncate(offset)
            except OSError:
                pass
            raise
        if self.obs is not None:
            self.obs.wal_fsync_seconds.observe(time.perf_counter() - fsync_started)

    def _on_retry(self, attempt: int, err: BaseException) -> None:
        if self.on_append_retry is not None:
            self.on_append_retry("wal.append")

    # ------------------------------------------------------------------
    # typed appenders
    # ------------------------------------------------------------------
    def append_transaction(self, tid: int, ops: Sequence[Dict], status: str) -> int:
        """Log a finished transaction and the operations it applied."""
        self._faults.fire("txn.commit")
        lsn = self.append("txn", {"tid": tid, "status": status, "ops": list(ops)})
        self.stats.transactions_logged += 1
        return lsn

    def append_merge(
        self,
        table: str,
        group_name: Optional[str],
        snapshot: int,
        keep_history: bool,
    ) -> int:
        """Log one completed (already swapped) table merge."""
        lsn = self.append(
            "merge",
            {
                "table": table,
                "group": group_name,
                "snapshot": snapshot,
                "keep_history": keep_history,
            },
        )
        self.stats.merges_logged += 1
        return lsn
