"""Concurrency primitives for the multi-threaded serving path.

Two pieces live here:

* :class:`ReadWriteLock` — the database-level lock.  Queries take the
  *shared* side so they proceed in parallel; DML, delta merges, DDL, and
  recovery take the *exclusive* side.  The lock is reentrant in both
  directions for the owning thread (``merge`` calls ``checkpoint``,
  ``auto_merge`` calls ``merge``, write listeners may issue reads), and
  writer-preferring so a steady query stream cannot starve writers.

* :class:`StripedMemo` — a lock-striped memo table for the parallel
  executor's *shared* scan/hash-table memos.  Each key hashes to one of a
  fixed number of stripes; the stripe lock is held across the compute so
  two workers never build the same hash table twice.  Distinct keys on
  different stripes proceed concurrently.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, Tuple, TypeVar

V = TypeVar("V")


class ReadWriteLock:
    """A reentrant, writer-preferring readers–writer lock.

    Any number of threads may hold the shared (read) side concurrently;
    the exclusive (write) side is held by at most one thread, with no
    concurrent readers.  The thread holding the write lock may re-acquire
    either side (nested write ops, reads issued from write listeners);
    a thread already holding only the read side may re-acquire the read
    side.  Read→write upgrades are refused — they deadlock two upgrading
    readers against each other — and raise ``RuntimeError`` instead.
    """

    def __init__(self):
        self._cond = threading.Condition(threading.Lock())
        self._readers: Dict[int, int] = {}  # thread ident -> hold depth
        self._writer: int = 0  # owning thread ident (0 = none)
        self._writer_depth = 0
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        """Take the shared side (blocks while a writer holds or waits)."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                # Reentrant: already holding either side.
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        """Release one shared hold."""
        me = threading.get_ident()
        with self._cond:
            depth = self._readers.get(me)
            if depth is None:
                raise RuntimeError("release_read without acquire_read")
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    def acquire_write(self) -> None:
        """Take the exclusive side (blocks until all readers drain)."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "read→write lock upgrade would deadlock; restructure the "
                    "caller to take the write lock first"
                )
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        """Release one exclusive hold."""
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by non-owning thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = 0
                self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read(self):
        """``with lock.read():`` — shared scope."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """``with lock.write():`` — exclusive scope."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReadWriteLock(readers={len(self._readers)}, "
            f"writer={'held' if self._writer else 'free'})"
        )


class StripedMemo:
    """A ``get_or_compute`` memo table with per-stripe locking.

    The stripe lock is held *across the compute*, so concurrent requests
    for the same key block instead of duplicating work — the right trade
    for the executor's memos, whose values (partition scans, join-side
    hash tables) are expensive and reused by many subjoins.  Keys landing
    on different stripes never contend.
    """

    __slots__ = ("_stripes",)

    def __init__(self, n_stripes: int = 16):
        if n_stripes < 1:
            raise ValueError("n_stripes must be >= 1")
        self._stripes: Tuple[Tuple[threading.Lock, Dict], ...] = tuple(
            (threading.Lock(), {}) for _ in range(n_stripes)
        )

    def get_or_compute(self, key, factory: Callable[[], V]) -> V:
        """The memoized value for ``key``, computing it once if absent."""
        lock, table = self._stripes[hash(key) % len(self._stripes)]
        with lock:
            try:
                return table[key]
            except KeyError:
                value = factory()
                table[key] = value
                return value

    def __len__(self) -> int:
        return sum(len(table) for _lock, table in self._stripes)


class DictMemo:
    """Same interface as :class:`StripedMemo` over a plain (unlocked) dict.

    The serial executor and the parallel executor's *private* memo mode
    use this — one instance per execute call or per worker thread, so no
    synchronization is needed.
    """

    __slots__ = ("_table",)

    def __init__(self):
        self._table: Dict = {}

    def get_or_compute(self, key, factory: Callable[[], V]) -> V:
        """The memoized value for ``key``, computing it once if absent."""
        try:
            return self._table[key]
        except KeyError:
            value = factory()
            self._table[key] = value
            return value

    def __len__(self) -> int:
        return len(self._table)
