"""EXPLAIN for aggregate-cache query processing.

Renders, without executing the query, how the cache manager would answer
it: which all-main combinations are cached (hit/miss), and for every
compensation subjoin whether it would be evaluated or pruned — and by which
mechanism (empty partition, logical hot/cold, dynamic tid range) — plus any
join-predicate-pushdown filters and the cost-seeded join order that would
be used.  This is the introspection surface for understanding the paper's
optimizations on a live database.

All the fates rendered here come straight from the
:class:`~repro.plan.physical.PhysicalPlan` the manager's planner built —
the same object :meth:`~repro.core.manager.AggregateCacheManager.execute`
interprets — so EXPLAIN can never disagree with execution.  Only the
HIT/MISS entry states are resolved here, against the live entry map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..query.query import AggregateQuery
from .strategies import ExecutionStrategy


@dataclass
class SubjoinPlan:
    """Fate of one compensation subjoin."""

    partitions: Dict[str, str]  # alias -> partition name
    action: str  # "evaluate" | "pruned"
    reason: str = ""  # "", "empty", "logical", "dynamic"
    pushdown: Dict[str, List[str]] = field(default_factory=dict)
    #: Cost-seeded probe side / left-deep join order (multi-table only).
    probe_side: Optional[str] = None
    join_order: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """One-line rendering of this subjoin's fate."""
        inner = ", ".join(f"{a}:{p}" for a, p in sorted(self.partitions.items()))
        if self.action == "pruned":
            return f"({inner})  PRUNED [{self.reason}]"
        tail = ""
        if len(self.join_order) > 1:
            tail = f"  [probe={self.probe_side}, order={'->'.join(self.join_order)}]"
        if self.pushdown:
            filters = "; ".join(
                f"{alias}: {' AND '.join(exprs)}"
                for alias, exprs in sorted(self.pushdown.items())
            )
            return f"({inner})  EVALUATE with pushdown {{{filters}}}{tail}"
        return f"({inner})  EVALUATE{tail}"


@dataclass
class QueryPlan:
    """The full explanation of one query under one strategy."""

    strategy: ExecutionStrategy
    cacheable: bool
    cached_combos: List[Dict[str, str]] = field(default_factory=list)
    entry_states: List[str] = field(default_factory=list)  # "HIT"/"MISS" per combo
    subjoins: List[SubjoinPlan] = field(default_factory=list)
    #: Star-join variant reduction: "alias:reason" per excluded table and
    #: the number of combinations never enumerated because of it.
    excluded: List[str] = field(default_factory=list)
    combos_excluded: int = 0

    def render(self) -> str:
        """Multi-line rendering of the whole plan."""
        lines = [f"strategy: {self.strategy.value}"]
        if not self.cacheable:
            lines.append(
                "query does not qualify for the aggregate cache "
                "(non-self-maintainable aggregates); executes uncached over "
                "all partition combinations"
            )
            return "\n".join(lines)
        if self.strategy is ExecutionStrategy.UNCACHED:
            lines.append("aggregate cache bypassed; all subjoins evaluated:")
            for plan in self.subjoins:
                lines.append(f"  {plan.describe()}")
            return "\n".join(lines)
        lines.append("cached all-main combinations:")
        for combo, state in zip(self.cached_combos, self.entry_states):
            inner = ", ".join(f"{a}:{p}" for a, p in sorted(combo.items()))
            lines.append(f"  ({inner})  {state}")
        if self.excluded:
            lines.append(
                f"star-join reduction: excluded=[{', '.join(self.excluded)}] "
                f"({self.combos_excluded} combinations not enumerated)"
            )
        evaluated = sum(1 for s in self.subjoins if s.action == "evaluate")
        pruned = len(self.subjoins) - evaluated
        lines.append(
            f"delta compensation: {len(self.subjoins)} subjoins "
            f"({evaluated} evaluated, {pruned} pruned):"
        )
        for plan in self.subjoins:
            lines.append(f"  {plan.describe()}")
        return "\n".join(lines)


def explain_query(
    manager,
    query: Union[str, AggregateQuery],
    strategy: Optional[ExecutionStrategy] = None,
    star_join_tables=None,
) -> QueryPlan:
    """Build the :class:`QueryPlan` for ``query`` under ``strategy``.

    ``manager`` is the :class:`~repro.core.manager.AggregateCacheManager`;
    nothing is executed and no entry is created.  The fates are taken from
    the manager's (possibly cached) physical plan, never re-derived.
    ``star_join_tables`` is the per-statement star-join override, matching
    :meth:`~repro.core.manager.AggregateCacheManager.execute`.
    """
    strategy = strategy if strategy is not None else manager.config.default_strategy
    physical = manager.plan_for(query, strategy, star_join_tables=star_join_tables)
    plan = QueryPlan(strategy=strategy, cacheable=physical.cacheable)
    plan.excluded = [e.describe() for e in physical.excluded]
    plan.combos_excluded = physical.prune.combos_excluded
    if not plan.cacheable:
        return plan
    for combo, key in zip(physical.cached_combos, physical.cache_keys):
        with manager._lock:
            entry = manager._entries.get(key)
            state = (
                "HIT"
                if entry is not None
                and entry.is_active
                and entry.matches_current_partitions()
                else "MISS (would be computed and admitted)"
            )
        plan.cached_combos.append({alias: p.name for alias, p in combo.items()})
        plan.entry_states.append(state)
    for sub in physical.subjoins:
        names = sub.partition_names()
        if sub.action == "pruned":
            plan.subjoins.append(SubjoinPlan(names, "pruned", sub.reason))
            continue
        rendered = {
            alias: [e.canonical() for e in exprs]
            for alias, exprs in sub.pushdown.items()
        }
        plan.subjoins.append(
            SubjoinPlan(
                names,
                "evaluate",
                pushdown=rendered,
                probe_side=sub.probe_side,
                join_order=list(sub.join_order),
            )
        )
    return plan
