"""EXPLAIN for aggregate-cache query processing.

Renders, without executing the query, how the cache manager would answer
it: which all-main combinations are cached (hit/miss), and for every
compensation subjoin whether it would be evaluated or pruned — and by which
mechanism (empty partition, logical hot/cold, dynamic tid range) — plus any
join-predicate-pushdown filters that would be attached.  This is the
introspection surface for understanding the paper's optimizations on a live
database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..query.executor import main_only_combos
from ..query.query import AggregateQuery
from .cache_key import cache_key_for
from .delta_compensation import compensation_assignments
from .pruning import JoinPruner
from .strategies import ExecutionStrategy


@dataclass
class SubjoinPlan:
    """Fate of one compensation subjoin."""

    partitions: Dict[str, str]  # alias -> partition name
    action: str  # "evaluate" | "pruned"
    reason: str = ""  # "", "empty", "logical", "dynamic"
    pushdown: Dict[str, List[str]] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line rendering of this subjoin's fate."""
        inner = ", ".join(f"{a}:{p}" for a, p in sorted(self.partitions.items()))
        if self.action == "pruned":
            return f"({inner})  PRUNED [{self.reason}]"
        if self.pushdown:
            filters = "; ".join(
                f"{alias}: {' AND '.join(exprs)}"
                for alias, exprs in sorted(self.pushdown.items())
            )
            return f"({inner})  EVALUATE with pushdown {{{filters}}}"
        return f"({inner})  EVALUATE"


@dataclass
class QueryPlan:
    """The full explanation of one query under one strategy."""

    strategy: ExecutionStrategy
    cacheable: bool
    cached_combos: List[Dict[str, str]] = field(default_factory=list)
    entry_states: List[str] = field(default_factory=list)  # "HIT"/"MISS" per combo
    subjoins: List[SubjoinPlan] = field(default_factory=list)

    def render(self) -> str:
        """Multi-line rendering of the whole plan."""
        lines = [f"strategy: {self.strategy.value}"]
        if not self.cacheable:
            lines.append(
                "query does not qualify for the aggregate cache "
                "(non-self-maintainable aggregates); executes uncached over "
                "all partition combinations"
            )
            return "\n".join(lines)
        if self.strategy is ExecutionStrategy.UNCACHED:
            lines.append("aggregate cache bypassed; all subjoins evaluated:")
            for plan in self.subjoins:
                lines.append(f"  {plan.describe()}")
            return "\n".join(lines)
        lines.append("cached all-main combinations:")
        for combo, state in zip(self.cached_combos, self.entry_states):
            inner = ", ".join(f"{a}:{p}" for a, p in sorted(combo.items()))
            lines.append(f"  ({inner})  {state}")
        evaluated = sum(1 for s in self.subjoins if s.action == "evaluate")
        pruned = len(self.subjoins) - evaluated
        lines.append(
            f"delta compensation: {len(self.subjoins)} subjoins "
            f"({evaluated} evaluated, {pruned} pruned):"
        )
        for plan in self.subjoins:
            lines.append(f"  {plan.describe()}")
        return "\n".join(lines)


def explain_query(manager, query: AggregateQuery, strategy: Optional[ExecutionStrategy] = None) -> QueryPlan:
    """Build the :class:`QueryPlan` for ``query`` under ``strategy``.

    ``manager`` is the :class:`~repro.core.manager.AggregateCacheManager`;
    nothing is executed and no entry is created.
    """
    strategy = strategy if strategy is not None else manager.config.default_strategy
    bound = manager._executor.bind(query)
    plan = QueryPlan(strategy=strategy, cacheable=bound.is_self_maintainable())
    if not plan.cacheable:
        return plan
    cached = main_only_combos(bound, manager._catalog)
    if strategy is ExecutionStrategy.UNCACHED:
        cached_for_compensation = []
    else:
        cached_for_compensation = cached
        for combo in cached:
            key = cache_key_for(bound, manager._catalog, combo)
            entry = manager._entries.get(key)
            state = (
                "HIT"
                if entry is not None
                and entry.is_active
                and entry.matches_current_partitions()
                else "MISS (would be computed and admitted)"
            )
            plan.cached_combos.append(
                {alias: p.name for alias, p in combo.items()}
            )
            plan.entry_states.append(state)
    pruner = None
    if strategy.prunes_empty or strategy.prunes_dynamic:
        pruner = JoinPruner(
            bound,
            manager._mds,
            manager._agings,
            strategy,
            predicate_pushdown=manager.config.predicate_pushdown,
            assume_md_integrity=manager.config.enforce_referential_integrity,
        )
    for assignment in compensation_assignments(
        bound, manager._catalog, cached_for_compensation
    ):
        names = {alias: p.name for alias, p in assignment.items()}
        if pruner is None:
            plan.subjoins.append(SubjoinPlan(names, "evaluate"))
            continue
        reason, pushdown = pruner.check(assignment)
        if reason is not None:
            plan.subjoins.append(SubjoinPlan(names, "pruned", reason))
        else:
            rendered = {
                alias: [e.canonical() for e in exprs]
                for alias, exprs in pushdown.items()
            }
            plan.subjoins.append(
                SubjoinPlan(names, "evaluate", pushdown=rendered)
            )
    return plan
