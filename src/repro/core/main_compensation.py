"""Main compensation (Section 2.2).

Updates and deletes invalidate rows in the main storage (the new version,
if any, goes to the delta).  A cache entry therefore stores the visibility
bit vector of every referenced main partition at creation time; at use
time the stored vectors are compared with the current transaction's vectors
and the contribution of the invalidated rows is *subtracted* from the
cached aggregate.

For join entries the subtraction is the inclusion–exclusion expansion over
the tables with invalidations: with invalidated sets ``inv_a`` and still-
visible sets ``now_a = stored_a ∩ current_a``,

    join(stored) = Σ_{T ⊆ aliases} join(a∈T: inv_a, a∉T: now_a)

so ``join(now) = join(stored) − Σ_{T ≠ ∅} join(...)``.  The number of
correction subjoins is ``2^k − 1`` for ``k`` tables with invalidations —
normally ``k ≤ 1`` since updates are rare in the analyzed workloads
(Section 3.2).  (The paper leaves optimizing this case to future work; we
implement the exact expansion.)
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional

import numpy as np

from ..errors import CacheError
from ..query.executor import ComboSpec, QueryExecutor
from ..query.aggregates import GroupedAggregates
from .cache_entry import AggregateCacheEntry


class StaleEntryError(CacheError):
    """The entry's partitions were rebuilt without maintenance; recompute."""


def apply_main_compensation(
    entry: AggregateCacheEntry,
    executor: QueryExecutor,
    snapshot: int,
    into: GroupedAggregates,
) -> int:
    """Subtract invalidated main-row contributions from ``into``.

    ``into`` must already contain (a copy of) the entry's value.  Returns
    the number of invalidated rows compensated (0 = entry was clean).
    Raises :class:`StaleEntryError` when a referenced main partition has a
    different length than the stored snapshot (it was rebuilt by a merge
    without entry maintenance).
    """
    if not entry.matches_current_partitions():
        raise StaleEntryError(f"entry {entry.key} references rebuilt partitions")
    if entry.is_clean_for(snapshot):
        return 0
    invalidated: Dict[str, np.ndarray] = {}
    surviving: Dict[str, np.ndarray] = {}
    for alias, partition in entry.main_partitions.items():
        current = partition.visibility(snapshot)
        stored = entry.visibility[alias]
        inv = stored.and_not(current)
        if inv.any():
            invalidated[alias] = np.asarray(inv.set_indices(), dtype=np.int64)
        surviving[alias] = np.flatnonzero((stored & current).to_numpy())
    if not invalidated:
        # The epoch check above said "something changed", but none of the
        # *stored* rows was invalidated (e.g. the stamps hit rows outside
        # the entry's visibility).  The counter still reflects an earlier
        # compensation run; reset it — this entry currently owes nothing.
        entry.metrics.dirty_counter = 0
        return 0
    dirty_aliases = sorted(invalidated)
    total_rows = int(sum(len(rows) for rows in invalidated.values()))
    combos: List[ComboSpec] = []
    for size in range(1, len(dirty_aliases) + 1):
        for subset in combinations(dirty_aliases, size):
            fixed: Dict[str, np.ndarray] = {}
            for alias in entry.main_partitions:
                if alias in subset:
                    fixed[alias] = invalidated[alias]
                else:
                    fixed[alias] = surviving[alias]
            combos.append(
                ComboSpec(dict(entry.main_partitions), fixed_rows=fixed)
            )
    executor.execute(entry.query, snapshot, combos=combos, into=into, sign=-1)
    entry.metrics.dirty_counter = total_rows
    return total_rows
