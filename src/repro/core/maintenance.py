"""Incremental cache maintenance during the delta merge (Sections 5.2, 6.1).

The aggregate cache maintains its entries *only* at delta-merge time — not
per base-table modification (eager views) and not at query time (lazy
views).  When a (main, delta) pair of a table is merged, every entry whose
combination references that main partition is folded forward while the
pre-merge state is still queryable:

1. pay off the accumulated main-compensation debt of *all* referenced
   tables (invalidated rows are subtracted permanently — the merge drops
   them from the rebuilt main);
2. add the contribution of the subjoin in which the merging table reads its
   delta and every other table reads its (still pre-merge) main — exactly
   the rows the merge is about to move.

After the physical swap the entry is re-anchored: the merging alias points
at the rebuilt main with a fresh visibility snapshot, and the other aliases'
stored visibilities advance to the merge snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..plan.cost import FILTER_SELECTIVITY
from ..query.aggregates import GroupedAggregates
from ..query.executor import ComboSpec, QueryExecutor
from ..query.expr import Cmp, Col, Lit
from ..storage.merge import MergeEvent
from .cache_entry import AggregateCacheEntry
from .cache_key import CacheKey
from .delta_memo import classify_memo
from .main_compensation import StaleEntryError, apply_main_compensation


@dataclass
class _PendingMaintenance:
    """State carried from before_merge to after_merge for one entry."""

    entry: AggregateCacheEntry
    merging_alias: str
    corrected: GroupedAggregates
    elapsed: float
    # The merge event this plan belongs to.  The atomic two-phase merge
    # announces *all* group events before any swap, so the manager holds
    # plans for several events at once and must pair each with its
    # after_merge (or cancel_merge) by identity.  Required: a plan with no
    # event could never be paired (or cancelled) and would leak forever.
    event: MergeEvent


def plan_entry_maintenance(
    entry: AggregateCacheEntry,
    event: MergeEvent,
    executor: QueryExecutor,
) -> Optional[_PendingMaintenance]:
    """Compute the post-merge value of ``entry`` (pre-merge state required).

    Returns None when the entry does not reference the merging main.
    Raises :class:`StaleEntryError` when the entry cannot be maintained
    (stale snapshot, or the merging main appears under several aliases —
    a self-join, which we drop rather than maintain).
    """
    merging_main = event.table.partition(event.main_name)
    aliases = [
        alias
        for alias, partition in entry.main_partitions.items()
        if partition is merging_main
    ]
    if not aliases:
        return None
    if len(aliases) > 1:
        raise StaleEntryError("self-join entries are not incrementally maintained")
    alias = aliases[0]
    started = time.perf_counter()
    corrected = entry.value.copy()
    # Step 1: retire invalidation debt (all aliases) at the merge snapshot.
    apply_main_compensation(entry, executor, event.snapshot, corrected)
    # Step 2: fold in the rows the merge moves out of the delta(s) — the
    # insert delta plus, when the table keeps one, the separate update delta.
    delta_names = [event.delta_name]
    if event.update_delta_name is not None:
        delta_names.append(event.update_delta_name)
    combos = []
    for delta_name in delta_names:
        combo_partitions = dict(entry.main_partitions)
        combo_partitions[alias] = event.table.partition(delta_name)
        combos.append(ComboSpec(combo_partitions))
    executor.execute(
        entry.query,
        event.snapshot,
        combos=combos,
        into=corrected,
        sign=1,
    )
    elapsed = time.perf_counter() - started
    return _PendingMaintenance(entry, alias, corrected, elapsed, event)


def finish_entry_maintenance(
    pending: _PendingMaintenance, event: MergeEvent
) -> None:
    """Re-anchor the entry onto the rebuilt main (post-merge state)."""
    entry = pending.entry
    alias = pending.merging_alias
    new_main = event.table.partition(event.main_name)
    entry.rebase(
        alias,
        new_main,
        new_main.visibility(event.snapshot),
        pending.corrected,
        event.snapshot,
    )
    # The other aliases' partitions were not rebuilt, but their stored
    # visibility advances to the merge snapshot: step 1 above permanently
    # subtracted everything invisible at that snapshot.
    for other_alias, partition in entry.main_partitions.items():
        if other_alias != alias:
            entry.visibility[other_alias] = partition.visibility(event.snapshot)
            entry.invalidation_epochs[other_alias] = partition.invalidation_epoch
    entry.metrics.maintenance_time += pending.elapsed
    # The merge consumed the delta rows this entry's compensation pressure
    # accumulated over, so the advisor's "time since last maintenance"
    # window restarts here — and *only* here: resetting in
    # plan_entry_maintenance would zero the pressure even when the
    # two-phase merge rolls back (cancel_merge), silently discarding the
    # accumulated signal; resetting on the successful finish can never
    # double-count because each merge finishes each entry at most once.
    entry.metrics.compensation_time_delta = 0.0


# ---------------------------------------------------------------------------
# Cardinality-based proactive refresh (idle-time maintenance)
# ---------------------------------------------------------------------------
#
# Between merges, entries accumulate delta growth that some future query
# will pay for at lookup time.  The refresh planner estimates *affected
# rows* per entry — physical delta growth past the memo's watermarks,
# discounted by synopsis-based selectivity of the entry's local filters —
# and routes each entry to one of three actions (the strategy-selection
# idea from dynamic-tables-ducklake, SNIPPETS.md 3):
#
# * ``skip``     — nothing grew (or the memo layer cannot engage);
# * ``advance``  — modest growth: scan only the appended suffix and
#                  advance the memo incrementally;
# * ``rebuild``  — growth dominates the covered prefix (or the memo is
#                  stale): recompute the compensation union outright.
#
# ``Database.refresh_cache`` / ``MergeAdvisor.recommend_refresh`` drive
# this from idle hooks so steady-state traffic hits an already-advanced
# memo instead of paying the suffix scan on the critical path.


@dataclass
class RefreshDecision:
    """The routed refresh action for one cache entry."""

    key: CacheKey
    action: str  # "advance" | "rebuild" | "skip"
    reason: str
    #: Estimated rows a query-time compensation would have to scan now
    #: (delta growth past the watermarks, selectivity-discounted).
    affected_rows: int = 0
    #: Rows the memo's covered prefix already spares.
    covered_rows: int = 0

    def describe(self) -> str:
        return (
            f"{self.key.describe() if hasattr(self.key, 'describe') else self.key}"
            f": {self.action} ({self.reason}, ~{self.affected_rows} affected"
            f" / {self.covered_rows} covered)"
        )


def _synopsis_refutes(partition, expr) -> bool:
    """True when the partition's column synopsis proves an equality filter
    matches nothing — e.g. appended order lines can never satisfy
    ``ol_number = 7`` when the synopsis max is 5.  Only ``col = literal``
    conjuncts are inspected; anything else conservatively keeps the
    default selectivity."""
    if not isinstance(expr, Cmp) or expr.op != "=":
        return False
    col, lit = expr.left, expr.right
    if isinstance(col, Lit) and isinstance(lit, Col):
        col, lit = lit, col
    if not isinstance(col, Col) or not isinstance(lit, Lit):
        return False
    if col.name not in partition.column_names():
        return False
    stats = partition.column_stats(col.name)
    if stats.min is None or stats.max is None:
        return False
    try:
        return lit.value < stats.min or lit.value > stats.max
    except TypeError:  # mixed-type compare (str filter on int column etc.)
        return False


def _suffix_selectivity(partition, filters) -> float:
    """Estimated fraction of appended rows surviving the local filters:
    the planner's flat per-conjunct discount, sharpened to zero when a
    synopsis refutes an equality conjunct outright."""
    selectivity = 1.0
    for expr in filters:
        if _synopsis_refutes(partition, expr):
            return 0.0
        selectivity *= FILTER_SELECTIVITY
    return selectivity


def estimate_affected_rows(entry: AggregateCacheEntry, plan, memo) -> int:
    """Selectivity-discounted delta growth past ``memo``'s watermarks —
    the rows a query-time incremental compensation would scan today."""
    alias_of: Dict[int, str] = {}
    for sub in plan.subjoins:
        for alias, partition in sub.partitions.items():
            alias_of[id(partition)] = alias
    affected = 0.0
    for pid, watermark in memo.watermarks.items():
        partition = memo.partitions[pid]
        grown = partition.row_count - watermark
        if grown <= 0:
            continue
        alias = alias_of.get(pid)
        filters = entry.query.local_filters(alias) if alias is not None else []
        affected += grown * _suffix_selectivity(partition, filters)
    return int(affected)


def plan_cache_refresh(
    manager, snapshot: int, rebuild_ratio: float
) -> List[RefreshDecision]:
    """Route every live entry to a refresh action at ``snapshot``.

    Pure planning — no aggregation happens here; the manager's
    ``refresh_entries`` applies the decisions (and the advisor's
    ``recommend_refresh`` surfaces them without applying)."""
    from .delta_memo import plan_partitions

    decisions: List[RefreshDecision] = []
    for entry in manager.entries():
        if not entry.is_active:
            continue
        key = entry.key
        if not manager.config.delta_memo:
            decisions.append(RefreshDecision(key, "skip", "memo_disabled"))
            continue
        try:
            plan = manager.plan_for(entry.query)
        except Exception:
            decisions.append(RefreshDecision(key, "skip", "unplannable"))
            continue
        if len(plan.cache_keys) != 1:
            # Hot/cold multi-entry plans share their compensation value
            # across entries; the memo layer does not engage for them.
            decisions.append(RefreshDecision(key, "skip", "multi_entry"))
            continue
        memo = entry.delta_memo
        verdict = classify_memo(
            memo,
            snapshot,
            plan_partitions(plan.subjoins),
            plan.signature,
            plan.excluded_fingerprint(),
        )
        if verdict == "rebuild":
            decisions.append(
                RefreshDecision(
                    key,
                    "rebuild",
                    "no_memo" if memo is None else "stale_memo",
                )
            )
            continue
        if verdict == "older_reader":  # pragma: no cover - global snapshot
            decisions.append(RefreshDecision(key, "skip", "older_reader"))
            continue
        covered = memo.rows_below_watermarks()
        affected = estimate_affected_rows(entry, plan, memo)
        if affected == 0 and snapshot == memo.anchor:
            decisions.append(
                RefreshDecision(key, "skip", "clean", 0, covered)
            )
        elif affected > rebuild_ratio * max(1, covered):
            decisions.append(
                RefreshDecision(
                    key,
                    "rebuild",
                    f"growth exceeds {rebuild_ratio:.0%} of covered prefix",
                    affected,
                    covered,
                )
            )
        else:
            decisions.append(
                RefreshDecision(key, "advance", "delta_growth", affected, covered)
            )
    return decisions
