"""Incremental cache maintenance during the delta merge (Sections 5.2, 6.1).

The aggregate cache maintains its entries *only* at delta-merge time — not
per base-table modification (eager views) and not at query time (lazy
views).  When a (main, delta) pair of a table is merged, every entry whose
combination references that main partition is folded forward while the
pre-merge state is still queryable:

1. pay off the accumulated main-compensation debt of *all* referenced
   tables (invalidated rows are subtracted permanently — the merge drops
   them from the rebuilt main);
2. add the contribution of the subjoin in which the merging table reads its
   delta and every other table reads its (still pre-merge) main — exactly
   the rows the merge is about to move.

After the physical swap the entry is re-anchored: the merging alias points
at the rebuilt main with a fresh visibility snapshot, and the other aliases'
stored visibilities advance to the merge snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..query.aggregates import GroupedAggregates
from ..query.executor import ComboSpec, QueryExecutor
from ..storage.merge import MergeEvent
from .cache_entry import AggregateCacheEntry
from .cache_key import CacheKey
from .main_compensation import StaleEntryError, apply_main_compensation


@dataclass
class _PendingMaintenance:
    """State carried from before_merge to after_merge for one entry."""

    entry: AggregateCacheEntry
    merging_alias: str
    corrected: GroupedAggregates
    elapsed: float
    # The merge event this plan belongs to.  The atomic two-phase merge
    # announces *all* group events before any swap, so the manager holds
    # plans for several events at once and must pair each with its
    # after_merge (or cancel_merge) by identity.  Required: a plan with no
    # event could never be paired (or cancelled) and would leak forever.
    event: MergeEvent


def plan_entry_maintenance(
    entry: AggregateCacheEntry,
    event: MergeEvent,
    executor: QueryExecutor,
) -> Optional[_PendingMaintenance]:
    """Compute the post-merge value of ``entry`` (pre-merge state required).

    Returns None when the entry does not reference the merging main.
    Raises :class:`StaleEntryError` when the entry cannot be maintained
    (stale snapshot, or the merging main appears under several aliases —
    a self-join, which we drop rather than maintain).
    """
    merging_main = event.table.partition(event.main_name)
    aliases = [
        alias
        for alias, partition in entry.main_partitions.items()
        if partition is merging_main
    ]
    if not aliases:
        return None
    if len(aliases) > 1:
        raise StaleEntryError("self-join entries are not incrementally maintained")
    alias = aliases[0]
    started = time.perf_counter()
    corrected = entry.value.copy()
    # Step 1: retire invalidation debt (all aliases) at the merge snapshot.
    apply_main_compensation(entry, executor, event.snapshot, corrected)
    # Step 2: fold in the rows the merge moves out of the delta(s) — the
    # insert delta plus, when the table keeps one, the separate update delta.
    delta_names = [event.delta_name]
    if event.update_delta_name is not None:
        delta_names.append(event.update_delta_name)
    combos = []
    for delta_name in delta_names:
        combo_partitions = dict(entry.main_partitions)
        combo_partitions[alias] = event.table.partition(delta_name)
        combos.append(ComboSpec(combo_partitions))
    executor.execute(
        entry.query,
        event.snapshot,
        combos=combos,
        into=corrected,
        sign=1,
    )
    elapsed = time.perf_counter() - started
    return _PendingMaintenance(entry, alias, corrected, elapsed, event)


def finish_entry_maintenance(
    pending: _PendingMaintenance, event: MergeEvent
) -> None:
    """Re-anchor the entry onto the rebuilt main (post-merge state)."""
    entry = pending.entry
    alias = pending.merging_alias
    new_main = event.table.partition(event.main_name)
    entry.rebase(
        alias,
        new_main,
        new_main.visibility(event.snapshot),
        pending.corrected,
        event.snapshot,
    )
    # The other aliases' partitions were not rebuilt, but their stored
    # visibility advances to the merge snapshot: step 1 above permanently
    # subtracted everything invisible at that snapshot.
    for other_alias, partition in entry.main_partitions.items():
        if other_alias != alias:
            entry.visibility[other_alias] = partition.visibility(event.snapshot)
            entry.invalidation_epochs[other_alias] = partition.invalidation_epoch
    entry.metrics.maintenance_time += pending.elapsed
