"""Cache admission policies (Section 2.1).

When the matching process misses, the manager computes the aggregate on the
main partitions and asks the admission policy whether the result "is
profitable enough for cache admission".  Admission sees the freshly
measured creation cost and the result size — the two sides of the profit
trade-off — plus the query itself for shape-based rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..query.aggregates import GroupedAggregates
from ..query.query import AggregateQuery


@dataclass(frozen=True)
class AdmissionRequest:
    """Facts available at admission-decision time."""

    query: AggregateQuery
    value: GroupedAggregates
    creation_time: float  # seconds spent computing the main aggregate
    aggregated_records: int  # records folded into the main aggregate


class AdmissionPolicy(Protocol):
    """Decides whether a freshly computed aggregate enters the cache."""

    def admit(self, request: AdmissionRequest) -> bool:
        """Decide whether the freshly computed aggregate enters the cache."""
        ...


class AlwaysAdmit:
    """Admit everything — the configuration used by the paper's benchmarks,
    where the evaluated queries are known to be cache-worthy."""

    def admit(self, request: AdmissionRequest) -> bool:
        """Always True."""
        return True


@dataclass
class ProfitAdmission:
    """Admit when the aggregate is expensive enough to be worth caching.

    ``min_creation_time`` filters out aggregates so cheap that compensation
    overhead would dominate; ``min_compression`` requires the aggregate to
    be substantially smaller than its input (records aggregated per group),
    which is the precondition for the cache paying off at all.
    """

    min_creation_time: float = 0.0
    min_compression: float = 1.0

    def admit(self, request: AdmissionRequest) -> bool:
        """Admit when creation cost and compression clear the thresholds."""
        if request.creation_time < self.min_creation_time:
            return False
        groups = max(1, request.value.group_count())
        compression = request.aggregated_records / groups
        return compression >= self.min_compression
