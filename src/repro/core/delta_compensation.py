"""Delta compensation (Section 2.3.2) with object-aware pruning (Section 5).

A query answered from the aggregate cache combines the cached all-main
aggregate(s) with the on-the-fly aggregate of every other partition
combination: ``JwithCache(t) = JnoCache(t) \\ {main}^t``.  This module
enumerates that compensation set, runs each subjoin through the
:class:`JoinPruner`, and returns the surviving :class:`ComboSpec` list
(with pushdown filters attached) ready for the executor.

Star-join-aware variant reduction (:mod:`repro.plan.star_join`) shrinks
the enumeration itself: tables excluded by the planner are pinned to
their single main partition and re-attached to every variant, so only
``2^k - 1`` combinations over the ``k`` remaining tables are generated
instead of ``2^t - 1``.  The exclusion soundness gate (all delta
partitions physically empty, table not aged) is re-validated here at
enumeration time — a stale or wrong exclusion decision falls back to
full enumeration for that table, so the delta suffix is always scanned
and degenerate cases (k = 0, single-table joins) stay correct: the
reduced product still contains every combination that could hold rows.

Repeated hits do not necessarily re-evaluate the surviving set from
scratch: the cache manager keeps a per-entry :class:`~repro.core.
delta_memo.DeltaMemo` of the folded compensation value and, while the
delta partitions have only grown (append-only suffix, no invalidations),
restricts the rescans to the rows past the memo's watermarks.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..obs.trace import Span
from ..plan.star_join import ExcludedTable, exclusion_is_sound
from ..query.executor import ComboSpec, describe_partitions
from ..query.query import AggregateQuery
from ..storage.catalog import Catalog
from ..storage.partition import Partition
from .pruning import JoinPruner, PruneReport


def _combo_identity(assignment: Dict[str, Partition]) -> FrozenSet[Tuple[str, int]]:
    return frozenset((alias, id(partition)) for alias, partition in assignment.items())


def sound_exclusions(
    query: AggregateQuery,
    catalog: Catalog,
    excluded: Sequence[ExcludedTable],
) -> Tuple[ExcludedTable, ...]:
    """The subset of ``excluded`` whose pinned-main reading is safe *now*.

    This is the enumeration-time re-validation of the star-join soundness
    gate: a table whose delta grew (or that was aged) since the exclusion
    decision is silently re-included into full enumeration rather than
    pinned to a main that no longer covers all its rows.
    """
    return tuple(
        ex
        for ex in excluded
        if exclusion_is_sound(catalog.table(query.table_of(ex.alias)))
    )


def compensation_assignments(
    query: AggregateQuery,
    catalog: Catalog,
    cached_combos: Sequence[Dict[str, Partition]],
    excluded: Sequence[ExcludedTable] = (),
) -> List[Dict[str, Partition]]:
    """All partition combinations except the cached all-main ones.

    Tables named in ``excluded`` (after the soundness-gate re-check) are
    pinned to their single main partition; the product runs over the
    remaining tables' full partition lists in FROM order, exactly like
    :func:`~repro.query.executor.all_partition_combos` restricted to the
    non-excluded axes.
    """
    pinned = {ex.alias for ex in sound_exclusions(query, catalog, excluded)}
    per_alias: List[List[Tuple[str, Partition]]] = []
    for ref in query.tables:
        table = catalog.table(ref.table)
        if ref.alias in pinned:
            per_alias.append([(ref.alias, table.main_partitions()[0])])
        else:
            per_alias.append([(ref.alias, p) for p in table.partitions()])
    cached_ids = {_combo_identity(combo) for combo in cached_combos}
    return [
        dict(chosen)
        for chosen in itertools.product(*per_alias)
        if _combo_identity(dict(chosen)) not in cached_ids
    ]


def build_compensation_combos(
    query: AggregateQuery,
    catalog: Catalog,
    cached_combos: Sequence[Dict[str, Partition]],
    pruner: Optional[JoinPruner],
    report: Optional[PruneReport] = None,
    span_sink: Optional[List[Span]] = None,
    excluded: Sequence[ExcludedTable] = (),
) -> List[ComboSpec]:
    """Enumerate, prune, and annotate the delta-compensation subjoins.

    ``pruner=None`` disables all pruning (the CACHED_NO_PRUNING strategy).
    ``excluded`` applies star-join variant reduction (gate re-validated;
    see :func:`compensation_assignments`).  The ``report`` collects
    per-reason counters for benchmarks and tests — ``combos_total`` counts
    the *reduced* enumeration, ``combos_excluded`` the combinations the
    reduction skipped; ``span_sink`` (EXPLAIN ANALYZE) receives one trace
    span per *pruned* subjoin carrying its prune reason — the evaluated
    ones get their spans from the executor, so together the sink sees
    every enumerated compensation subjoin exactly once.
    """
    live = sound_exclusions(query, catalog, excluded)
    assignments = compensation_assignments(query, catalog, cached_combos, live)
    if report is not None and live:
        report.excluded_tables += len(live)
        report.combos_excluded += excluded_combo_count(query, catalog, live)
    combos: List[ComboSpec] = []
    for assignment in assignments:
        if report is not None:
            report.combos_total += 1
        if pruner is None:
            combos.append(ComboSpec(assignment))
            if report is not None:
                report.evaluated += 1
            continue
        reason, pushdown = pruner.check(assignment)
        if reason is not None:
            if report is not None:
                if reason == "empty":
                    report.pruned_empty += 1
                elif reason == "logical":
                    report.pruned_logical += 1
                else:
                    report.pruned_dynamic += 1
            if span_sink is not None:
                span_sink.append(
                    Span(
                        name="subjoin",
                        attrs={
                            "combo": describe_partitions(assignment),
                            "status": "pruned",
                            "prune_reason": reason,
                        },
                    )
                )
            continue
        if report is not None:
            report.evaluated += 1
            report.pushdown_filters += sum(len(v) for v in pushdown.values())
        combos.append(ComboSpec(assignment, extra_filters=pushdown))
    return combos


def excluded_combo_count(
    query: AggregateQuery,
    catalog: Catalog,
    excluded: Sequence[ExcludedTable],
) -> int:
    """How many partition combinations the reduction never enumerated:
    the full product over every table's partitions minus the reduced
    product with excluded tables pinned (cached all-main combinations
    appear in both products, so they cancel)."""
    pinned = {ex.alias for ex in excluded}
    full = 1
    reduced = 1
    for ref in query.tables:
        n = len(catalog.table(ref.table).partitions())
        full *= n
        if ref.alias not in pinned:
            reduced *= n
    return full - reduced
