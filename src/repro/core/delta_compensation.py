"""Delta compensation (Section 2.3.2) with object-aware pruning (Section 5).

A query answered from the aggregate cache combines the cached all-main
aggregate(s) with the on-the-fly aggregate of every other partition
combination: ``JwithCache(t) = JnoCache(t) \\ {main}^t``.  This module
enumerates that compensation set, runs each subjoin through the
:class:`JoinPruner`, and returns the surviving :class:`ComboSpec` list
(with pushdown filters attached) ready for the executor.

Repeated hits do not necessarily re-evaluate the surviving set from
scratch: the cache manager keeps a per-entry :class:`~repro.core.
delta_memo.DeltaMemo` of the folded compensation value and, while the
delta partitions have only grown (append-only suffix, no invalidations),
restricts the rescans to the rows past the memo's watermarks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..obs.trace import Span
from ..query.executor import ComboSpec, all_partition_combos, describe_partitions
from ..query.query import AggregateQuery
from ..storage.catalog import Catalog
from ..storage.partition import Partition
from .pruning import JoinPruner, PruneReport


def _combo_identity(assignment: Dict[str, Partition]) -> FrozenSet[Tuple[str, int]]:
    return frozenset((alias, id(partition)) for alias, partition in assignment.items())


def compensation_assignments(
    query: AggregateQuery,
    catalog: Catalog,
    cached_combos: Sequence[Dict[str, Partition]],
) -> List[Dict[str, Partition]]:
    """All partition combinations except the cached all-main ones."""
    cached_ids = {_combo_identity(combo) for combo in cached_combos}
    return [
        assignment
        for assignment in all_partition_combos(query, catalog)
        if _combo_identity(assignment) not in cached_ids
    ]


def build_compensation_combos(
    query: AggregateQuery,
    catalog: Catalog,
    cached_combos: Sequence[Dict[str, Partition]],
    pruner: Optional[JoinPruner],
    report: Optional[PruneReport] = None,
    span_sink: Optional[List[Span]] = None,
) -> List[ComboSpec]:
    """Enumerate, prune, and annotate the delta-compensation subjoins.

    ``pruner=None`` disables all pruning (the CACHED_NO_PRUNING strategy).
    The ``report`` collects per-reason counters for benchmarks and tests;
    ``span_sink`` (EXPLAIN ANALYZE) receives one trace span per *pruned*
    subjoin carrying its prune reason — the evaluated ones get their spans
    from the executor, so together the sink sees every compensation
    subjoin exactly once.
    """
    assignments = compensation_assignments(query, catalog, cached_combos)
    combos: List[ComboSpec] = []
    for assignment in assignments:
        if report is not None:
            report.combos_total += 1
        if pruner is None:
            combos.append(ComboSpec(assignment))
            if report is not None:
                report.evaluated += 1
            continue
        reason, pushdown = pruner.check(assignment)
        if reason is not None:
            if report is not None:
                if reason == "empty":
                    report.pruned_empty += 1
                elif reason == "logical":
                    report.pruned_logical += 1
                else:
                    report.pruned_dynamic += 1
            if span_sink is not None:
                span_sink.append(
                    Span(
                        name="subjoin",
                        attrs={
                            "combo": describe_partitions(assignment),
                            "status": "pruned",
                            "prune_reason": reason,
                        },
                    )
                )
            continue
        if report is not None:
            report.evaluated += 1
            report.pushdown_filters += sum(len(v) for v in pushdown.values())
        combos.append(ComboSpec(assignment, extra_filters=pushdown))
    return combos
