"""Matching-dependency enforcement at insert time (Section 5, Section 6.3).

Every insert passes through the enforcer before it reaches the table:

* if the target table is the *parent* of an MD, the row's tid column is
  stamped with the inserting transaction's id (larger than any existing
  value, since tids are monotonic);
* if it is the *child* of an MD and the foreign key is non-NULL, the parent
  row is looked up through the primary-key index and its tid value copied
  into the child row.  This is the per-insert lookup whose overhead Section
  6.3 measures; it doubles as the referential-integrity check.

The enforcer keeps counters so the insert-overhead benchmark can report the
number of lookups separately from wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import IntegrityError
from ..storage.catalog import Catalog
from .matching_dependency import MatchingDependency, validate_md


@dataclass
class EnforcementStats:
    """Counters over the enforcer's lifetime."""

    parent_stamps: int = 0
    child_lookups: int = 0
    lookups_failed: int = 0


class MDEnforcer:
    """Stamps and copies matching-dependency tid columns on insert."""

    def __init__(self, catalog: Catalog, enforce_referential_integrity: bool = True):
        self._catalog = catalog
        self._enforce_ri = enforce_referential_integrity
        self._as_parent: Dict[str, List[MatchingDependency]] = {}
        self._as_child: Dict[str, List[MatchingDependency]] = {}
        self.stats = EnforcementStats()

    # ------------------------------------------------------------------
    def register(self, md: MatchingDependency) -> None:
        """Validate and activate an MD for subsequent inserts."""
        validate_md(md, self._catalog)
        self._as_parent.setdefault(md.parent_table, []).append(md)
        self._as_child.setdefault(md.child_table, []).append(md)

    def dependencies(self) -> List[MatchingDependency]:
        """All registered MDs (each exactly once)."""
        seen = []
        for mds in self._as_parent.values():
            seen.extend(mds)
        return seen

    def dependencies_of_child(self, table_name: str) -> List[MatchingDependency]:
        """The MDs in which ``table_name`` is the child side."""
        return list(self._as_child.get(table_name, []))

    # ------------------------------------------------------------------
    def stamp(self, table_name: str, row: Dict[str, object], tid: int) -> Dict[str, object]:
        """Return a copy of ``row`` with all MD tid columns filled.

        Parent-side columns get the inserting transaction's id.  Child-side
        columns get the matching parent tuple's tid; a missing parent raises
        ``IntegrityError`` when referential-integrity enforcement is on,
        otherwise the tid stays NULL (and the row can never join, since its
        foreign key has no matching parent either).
        """
        stamped = dict(row)
        for md in self._as_parent.get(table_name, []):
            stamped[md.tid_column] = tid
            self.stats.parent_stamps += 1
        for md in self._as_child.get(table_name, []):
            fk_value = stamped.get(md.child_fk)
            if fk_value is None:
                stamped.setdefault(md.tid_column, None)
                continue
            parent_tid = self._lookup_parent_tid(md, fk_value)
            stamped[md.tid_column] = parent_tid
        return stamped

    def _lookup_parent_tid(self, md: MatchingDependency, fk_value) -> object:
        self.stats.child_lookups += 1
        parent = self._catalog.table(md.parent_table)
        row = parent.get_row(fk_value)
        if row is None:
            self.stats.lookups_failed += 1
            if self._enforce_ri:
                raise IntegrityError(
                    f"insert into {md.child_table!r} references missing "
                    f"{md.parent_table!r} row {fk_value!r} "
                    f"(via {md.child_fk!r})"
                )
            return None
        return row[md.tid_column]

    def __repr__(self) -> str:
        return (
            f"MDEnforcer(mds={len(self.dependencies())}, "
            f"lookups={self.stats.child_lookups})"
        )
