"""Merge decision functions: when should the delta merge run?

The paper treats the delta merge as periodic and observes (Section 5.2)
that *synchronizing* the merges of related tables maximizes join-pruning
success.  Production systems use merge decision functions over observable
state; this module implements one over the engine's own signals:

* **delta fill** — the fraction of a table's physical rows sitting in delta
  partitions.  A growing delta makes every compensation more expensive
  (Figs. 7/8), so crossing a fill threshold recommends a merge.
* **compensation pressure** — the cumulative delta-compensation time the
  aggregate cache has spent on entries referencing the table since their
  last maintenance, compared to the estimated cost of merging.
* **merge groups** — tables connected by matching dependencies are
  recommended *together*, so the resulting merges are synchronized and the
  post-merge tid ranges stay aligned (the Section 5.2 effect).

``Database.auto_merge(advisor)`` applies the recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..storage.catalog import Catalog


@dataclass
class MergeRecommendation:
    """The advisor's verdict for one invocation."""

    tables: List[str] = field(default_factory=list)
    reasons: Dict[str, str] = field(default_factory=dict)

    @property
    def should_merge(self) -> bool:
        """True when at least one table is recommended."""
        return bool(self.tables)

    def describe(self) -> str:
        """One-line human-readable rendering."""
        if not self.tables:
            return "no merge recommended"
        parts = [f"{name} ({self.reasons[name]})" for name in self.tables]
        return "merge recommended: " + ", ".join(parts)


@dataclass
class RefreshRecommendation:
    """The advisor's idle-refresh verdict: one routed decision per entry
    (see :class:`repro.core.maintenance.RefreshDecision`)."""

    decisions: List = field(default_factory=list)

    @property
    def should_refresh(self) -> bool:
        """True when at least one entry needs an advance or rebuild."""
        return any(d.action != "skip" for d in self.decisions)

    def describe(self) -> str:
        """One-line human-readable rendering."""
        pending = [d for d in self.decisions if d.action != "skip"]
        if not pending:
            return "no refresh recommended"
        return "refresh recommended: " + ", ".join(d.describe() for d in pending)


@dataclass
class MergeAdvisor:
    """Threshold-based merge decision function.

    ``delta_fill_threshold`` — recommend once this fraction of a table's
    rows is in its delta partitions (HANA's classic auto-merge signal).
    ``min_delta_rows`` — ignore tiny tables regardless of the ratio.
    ``compensation_budget`` — seconds of cumulative delta-compensation time
    across cache entries referencing a table before a merge pays for itself.
    ``synchronize_md_groups`` — extend every recommendation to all tables
    connected through matching dependencies (Section 5.2).
    """

    delta_fill_threshold: float = 0.10
    min_delta_rows: int = 64
    compensation_budget: float = 0.5
    synchronize_md_groups: bool = True

    # ------------------------------------------------------------------
    def recommend(self, db) -> MergeRecommendation:
        """Inspect ``db`` and produce a recommendation (no side effects)."""
        recommendation = MergeRecommendation()
        for name in db.catalog.table_names():
            reason = self._table_reason(db, name)
            if reason is not None:
                recommendation.tables.append(name)
                recommendation.reasons[name] = reason
        if self.synchronize_md_groups and recommendation.tables:
            self._extend_to_md_groups(db, recommendation)
        return recommendation

    def recommend_refresh(
        self, db, snapshot: Optional[int] = None
    ) -> RefreshRecommendation:
        """Route every cache entry to an idle-refresh action (no side
        effects) — the cardinality-based counterpart of :meth:`recommend`:
        instead of merging the base tables, advance or rebuild the entries'
        delta memos so steady-state queries stop paying the suffix scan.
        ``Database.refresh_cache`` applies the result."""
        from .maintenance import plan_cache_refresh

        if snapshot is None:
            snapshot = db.transactions.global_snapshot()
        decisions = plan_cache_refresh(
            db.cache, snapshot, db.cache.config.refresh_rebuild_ratio
        )
        return RefreshRecommendation(decisions)

    def _table_reason(self, db, name: str) -> Optional[str]:
        table = db.table(name)
        delta_rows = sum(p.row_count for p in table.delta_partitions())
        total_rows = table.row_count()
        if delta_rows >= self.min_delta_rows and total_rows > 0:
            fill = delta_rows / total_rows
            if fill >= self.delta_fill_threshold:
                return f"delta fill {fill:.1%} >= {self.delta_fill_threshold:.1%}"
        compensation = self._compensation_pressure(db, name)
        if compensation >= self.compensation_budget:
            return (
                f"delta-compensation time {compensation:.3f}s >= "
                f"budget {self.compensation_budget:.3f}s"
            )
        return None

    @staticmethod
    def _compensation_pressure(db, name: str) -> float:
        total = 0.0
        for entry in db.cache.entries():
            if any(
                query_table == name
                for query_table, _id in entry.key.table_ids
            ):
                total += entry.metrics.compensation_time_delta
        return total

    def _extend_to_md_groups(self, db, recommendation: MergeRecommendation) -> None:
        """Pull MD-connected tables into the recommendation (merge sync)."""
        adjacency: Dict[str, Set[str]] = {}
        for md in db.enforcer.dependencies():
            adjacency.setdefault(md.parent_table, set()).add(md.child_table)
            adjacency.setdefault(md.child_table, set()).add(md.parent_table)
        frontier = list(recommendation.tables)
        seen = set(frontier)
        while frontier:
            current = frontier.pop()
            for neighbor in adjacency.get(current, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
                    recommendation.tables.append(neighbor)
                    recommendation.reasons[neighbor] = (
                        f"merge-synchronized with {current} (matching dependency)"
                    )
