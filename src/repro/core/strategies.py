"""Execution strategies and cache configuration.

The four strategies are exactly the ones compared throughout Section 6.4:

* ``UNCACHED`` — evaluate every partition subjoin, no cache (Section 2.3.1);
* ``CACHED_NO_PRUNING`` — use the aggregate cache for the all-main subjoin,
  evaluate all remaining ``2^t - 1`` compensation subjoins (Section 2.3.2);
* ``CACHED_EMPTY_DELTA`` — additionally skip compensation subjoins that
  reference a physically empty partition (the dimension-table optimization);
* ``CACHED_FULL_PRUNING`` — additionally apply matching-dependency dynamic
  tid-range pruning (Equation 5), logical hot/cold pruning (Section 5.4),
  and — when enabled — join predicate pushdown for the subjoins that survive
  (Section 5.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union


class ExecutionStrategy(enum.Enum):
    """How an aggregate query is answered."""

    UNCACHED = "uncached"
    CACHED_NO_PRUNING = "cached_no_pruning"
    CACHED_EMPTY_DELTA = "cached_empty_delta"
    CACHED_FULL_PRUNING = "cached_full_pruning"

    @property
    def uses_cache(self) -> bool:
        """True for every strategy except UNCACHED."""
        return self is not ExecutionStrategy.UNCACHED

    @property
    def prunes_empty(self) -> bool:
        """True when empty-partition pruning applies."""
        return self in (
            ExecutionStrategy.CACHED_EMPTY_DELTA,
            ExecutionStrategy.CACHED_FULL_PRUNING,
        )

    @property
    def prunes_dynamic(self) -> bool:
        """True when MD tid-range / logical pruning applies."""
        return self is ExecutionStrategy.CACHED_FULL_PRUNING


class MaintenanceMode(enum.Enum):
    """What happens to cache entries at delta-merge time (Section 5.2)."""

    INCREMENTAL = "incremental"  # fold the merged delta into the entry
    DROP = "drop"  # invalidate; the next query recreates the entry


@dataclass
class CacheConfig:
    """Tuning knobs of the aggregate cache manager."""

    # Default strategy when a query does not name one explicitly.
    default_strategy: ExecutionStrategy = ExecutionStrategy.CACHED_FULL_PRUNING
    # Apply join predicate pushdown to unpruned mixed subjoins.
    predicate_pushdown: bool = True
    # Entry lifecycle at merge time.
    maintenance_mode: MaintenanceMode = MaintenanceMode.INCREMENTAL
    # Maximum number of entries (None = unbounded); eviction policy applies.
    max_entries: Optional[int] = None
    # Maximum total approximate bytes of cached values (None = unbounded).
    max_bytes: Optional[int] = None
    # Enforce referential integrity on matching-dependency lookups.
    enforce_referential_integrity: bool = True
    # Physical plans cached per (statement, strategy); 0 disables the plan
    # cache (every query re-binds and re-plans).
    plan_cache_size: int = 128
    # Keep a per-entry delta-compensation memo and advance it incrementally
    # over the append-only delta suffix on repeated hits (see
    # repro.core.delta_memo).  Off = recompute the full compensation union
    # on every hit, as the paper describes it.
    delta_memo: bool = True
    # Star-join-aware variant reduction (see repro.plan.star_join): under
    # the pruning strategies, exclude tables whose delta partitions are
    # provably empty from compensation-variant generation and re-attach
    # their mains to every variant, collapsing 2^t-1 enumerated subjoins
    # to 2^k-1 over the k remaining tables.  Off = enumerate exhaustively
    # and rely on per-combo pruning alone (the paper's baseline).
    star_join_reduction: bool = True
    # Config-wide star-join override: None = detect automatically; any
    # iterable (or comma-separated string) of table/alias names restricts
    # exclusion candidates to exactly those names (() = exclude nothing).
    # A per-query star_join_tables=... takes precedence when given.
    star_join_tables: Optional[Union[str, Iterable[str]]] = None
    # Share compensation-subjoin intermediates across overlapping queries
    # (same join core, different group-by/aggregates) through a process-wide
    # recycler (see repro.core.recycler).  Off = every query recomputes its
    # own compensation subjoins, as in the paper.
    subjoin_recycler: bool = True
    # Byte budget of the subjoin recycler's LRU store.  Recycled indices
    # also count toward the governor's tracked bytes and are shed right
    # after cold-tier overhead (they are pure recomputable derivations).
    recycler_max_bytes: int = 32 * 1024 * 1024
    # Cardinality-based refresh routing: an entry whose estimated affected
    # rows exceed this fraction of the rows its memo already covers is
    # refreshed by full rebuild instead of incremental memo advance.
    refresh_rebuild_ratio: float = 0.5
