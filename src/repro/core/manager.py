"""The aggregate cache manager (Fig. 1 / Fig. 3).

Orchestrates the full query path of the paper:

1. the query executor delegates qualifying aggregate query blocks here;
2. the cache matching process looks up an entry per all-main partition
   combination (one for plain tables, one per temperature under hot/cold
   partitioning);
3. on a miss the aggregate is computed on the main partitions with the
   global record visibility and, if the admission policy agrees, an entry
   is created;
4. hit or freshly created, **main compensation** then **delta compensation**
   are applied to produce the transaction-consistent result;
5. at delta-merge time the manager acts as a merge listener and maintains
   its entries incrementally (or drops them, per configuration).

Matching dependencies and consistent-aging declarations registered here
power the dynamic join pruning and predicate pushdown of delta compensation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from ..errors import CacheError, QueryAborted
from ..obs.instruments import EngineMetrics
from ..obs.trace import QueryTrace, Span
from ..plan.cache import PlanCache
from ..plan.logical import Binder
from ..plan.physical import PhysicalPlan, Planner, plan_signature
from ..plan.star_join import normalize_star_join_override
from ..query.aggregates import GroupedAggregates
from ..query.executor import (
    ComboSpec,
    ExecutionStats,
    QueryExecutor,
    describe_partitions,
)
from ..query.query import AggregateQuery
from ..query.sql import clear_parse_cache, parse_cache_stats, parse_sql
from ..storage.aging import ConsistentAging
from ..storage.catalog import Catalog
from ..storage.merge import MergeEvent
from ..txn.consistent_view import ConsistentViewManager
from ..txn.manager import Transaction
from .admission import AdmissionPolicy, AdmissionRequest, AlwaysAdmit
from .cache_entry import AggregateCacheEntry
from .cache_key import CacheKey
from .enforcement import MDEnforcer
from .delta_memo import (
    DeltaMemo,
    advance_memo,
    build_memo,
    classify_memo,
    incremental_specs,
    plan_partitions,
)
from .eviction import EvictionPolicy, ProfitEviction
from .main_compensation import StaleEntryError, apply_main_compensation
from .maintenance import (
    RefreshDecision,
    _PendingMaintenance,
    finish_entry_maintenance,
    plan_cache_refresh,
    plan_entry_maintenance,
)
from .matching_dependency import MatchingDependency
from .metrics import CacheMetrics
from .pruning import PruneReport
from .recycler import RecycleContext, SubjoinRecycler
from .strategies import CacheConfig, ExecutionStrategy, MaintenanceMode


@dataclass
class CacheQueryReport:
    """Everything that happened while answering one query."""

    strategy: ExecutionStrategy
    fallback_uncached: bool = False  # query did not qualify for the cache
    cache_hits: int = 0
    entries_created: int = 0
    admission_rejected: int = 0
    entries_recomputed: int = 0  # stale/invalidated entries replaced
    invalidated_rows_compensated: int = 0
    prune: PruneReport = field(default_factory=PruneReport)
    executor_stats: ExecutionStats = field(default_factory=ExecutionStats)
    time_total: float = 0.0
    time_cache_lookup_or_build: float = 0.0
    time_main_compensation: float = 0.0
    time_delta_compensation: float = 0.0
    #: How delta compensation ran: "incremental" (reused a memo and scanned
    #: only the delta suffix), "full" (recomputed everything, memo rebuilt),
    #: "bypass" (memo layer not applicable — see delta_memo_reason), or ""
    #: for queries that never reach delta compensation.
    delta_memo_mode: str = ""
    delta_memo_reason: str = ""
    #: Covered prefix rows an incremental run did not rescan.
    delta_memo_rows_saved: int = 0
    #: Cross-query subjoin recycler activity during compensation (see
    #: repro.core.recycler): hits replayed stored joined tuples, misses
    #: evaluated and published, stale probes found an expired entry, and
    #: stored counts successful publications.
    recycler_hits: int = 0
    recycler_misses: int = 0
    recycler_stale: int = 0
    recycler_stored: int = 0
    #: Why the query bypassed the cache while degraded: "breaker_open"
    #: (cache breaker open, cached path skipped upfront) or "fallback"
    #: (the cached path failed mid-query and the answer was recomputed
    #: from the base tables).  Empty for healthy execution.
    degraded_reason: str = ""
    #: The physical plan the query ran (carries the bound statement).
    plan: Optional[PhysicalPlan] = None


#: Flat per-entry estimates for the auxiliary caches under the memory
#: budget.  Plans and parsed statements are small object graphs whose true
#: size is not worth measuring precisely; the budget only needs them to
#: count as nonzero pressure so a pathological plan/parse cache cannot
#: hide from the shedder.
_PLAN_CACHE_BYTES_PER_ENTRY = 8 * 1024
_PARSE_CACHE_BYTES_PER_ENTRY = 2 * 1024


def _memo_nbytes(memo: DeltaMemo) -> int:
    """Approximate bytes held by a delta memo's folded aggregate (cached
    on the memo — it is never mutated after install)."""
    nbytes = getattr(memo, "_nbytes_cache", None)
    if nbytes is None:
        nbytes = memo.folded.approximate_nbytes()
        memo._nbytes_cache = nbytes
    return nbytes


def _subjoin_touches_mapped(sub) -> bool:
    """True when the subjoin involves a memory-mapped cold partition *now*
    (checked live: demotion keeps cached plans valid, so the plan-time
    flag can be stale)."""
    return any(
        getattr(p, "storage_tier", "resident") == "mapped"
        for p in sub.partitions.values()
    )


def _count_synopsis_skips(plan) -> int:
    """Pruned subjoins whose verdict spared a cold disk scan, per the
    partitions' current storage tier."""
    return sum(
        1
        for sub in plan.subjoins
        if sub.action == "pruned" and _subjoin_touches_mapped(sub)
    )


def _pruned_span(sub) -> Span:
    """The zero-cost trace span of one pruned compensation subjoin."""
    attrs = {
        "combo": describe_partitions(sub.partitions),
        "status": "pruned",
        "prune_reason": sub.reason,
    }
    if _subjoin_touches_mapped(sub):
        attrs["synopsis_pruned"] = True
    return Span(name="subjoin", attrs=attrs)


class AggregateCacheManager:
    """Manages aggregate cache entries and answers queries through them.

    Queries run concurrently under the database's shared lock, so the
    manager's own mutable state — the entry map, the access clock, and the
    lifetime counters — is guarded by an internal reentrant lock.  The lock
    is scoped to bookkeeping only: aggregate computation (entry builds,
    compensation) always happens outside it, so a cache miss never blocks
    concurrent hits.  Merge maintenance runs under the database's exclusive
    lock and takes the internal lock as well, purely for uniformity.
    """

    def __init__(
        self,
        catalog: Catalog,
        executor: QueryExecutor,
        view_manager: ConsistentViewManager,
        config: Optional[CacheConfig] = None,
        admission: Optional[AdmissionPolicy] = None,
        eviction: Optional[EvictionPolicy] = None,
        obs: Optional[EngineMetrics] = None,
        governor=None,
    ):
        self._catalog = catalog
        self._executor = executor
        self._views = view_manager
        self.obs = obs if obs is not None else EngineMetrics.disabled()
        self.config = config if config is not None else CacheConfig()
        self._admission = admission if admission is not None else AlwaysAdmit()
        self._eviction = eviction if eviction is not None else ProfitEviction()
        self._binder = Binder(catalog)
        self._planner = Planner(catalog, self.config)
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        self._lock = threading.RLock()
        self._entries: Dict[CacheKey, AggregateCacheEntry] = {}
        self._mds: List[MatchingDependency] = []
        self._agings: List[ConsistentAging] = []
        self._clock = 0
        self._pending_maintenance: List[_PendingMaintenance] = []
        self._pending_drops: set = set()
        # Optional FaultInjector; the owning Database wires its own in so
        # the ``cache.maintenance`` fault point covers merge maintenance.
        self.fault_injector = None
        # Optional ResourceGovernor: its cache breaker gates the cached
        # path (degraded mode answers from the base tables) and its
        # memory budget drives shedding after each query.
        self.governor = governor
        # Lifetime counters (the monitor's system view).
        self.total_hits = 0
        self.total_misses = 0
        self.total_evictions = 0
        self.total_maintenance_runs = 0
        self.total_memo_hits = 0  # incremental delta-compensation reuses
        self.total_memo_misses = 0  # full recomputes that (re)built a memo
        self.total_memo_bypass = 0  # queries the memo layer stepped aside for
        self.total_refresh_advances = 0  # proactive incremental refreshes
        self.total_refresh_rebuilds = 0  # proactive full rebuilds
        # Cross-query subjoin recycler (None when disabled by config); its
        # own counters live on the recycler, snapshotted under our lock in
        # counters_snapshot (manager → recycler is the one lock order).
        self.recycler: Optional[SubjoinRecycler] = (
            SubjoinRecycler(max_bytes=self.config.recycler_max_bytes, obs=self.obs)
            if self.config.subjoin_recycler
            else None
        )

    # ------------------------------------------------------------------
    # object-awareness registration
    # ------------------------------------------------------------------
    def register_matching_dependency(self, md: MatchingDependency) -> None:
        """Activate an MD for pruning/pushdown decisions."""
        with self._lock:
            self._mds.append(md)
        self._bump_plan_versions((md.parent_table, md.child_table))

    def register_consistent_aging(self, declaration: ConsistentAging) -> None:
        """Activate a consistent-aging declaration for logical pruning."""
        with self._lock:
            self._agings.append(declaration)
        self._bump_plan_versions(
            (declaration.left_table, declaration.right_table)
        )

    def _bump_plan_versions(self, table_names) -> None:
        """Invalidate cached plans over the given tables.

        Object-awareness registrations change pruning/pushdown decisions
        for exactly the plans referencing these tables; bumping the table
        versions fails their signature compare while unrelated plans stay
        hot.
        """
        for name in table_names:
            if self._catalog.has_table(name):
                self._catalog.table(name).bump_version()

    @property
    def matching_dependencies(self) -> List[MatchingDependency]:
        """The registered matching dependencies (copy)."""
        with self._lock:
            return list(self._mds)

    # ------------------------------------------------------------------
    # entry inspection (tests / metrics)
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Number of live cache entries."""
        with self._lock:
            return len(self._entries)

    def entries(self) -> List[AggregateCacheEntry]:
        """All live cache entries (copy of the list)."""
        with self._lock:
            return list(self._entries.values())

    def entries_for(self, query: AggregateQuery) -> List[AggregateCacheEntry]:
        """Entries caching the given query (any all-main combination)."""
        bound = self._executor.bind(query)
        text = bound.canonical_key()
        with self._lock:
            return [e for e in self._entries.values() if e.key.query_text == text]

    def clear(self) -> None:
        """Drop every cache entry (and the recycled subjoins derived from
        the same computations)."""
        with self._lock:
            self._entries.clear()
            if self.recycler is not None:
                self.recycler.clear()

    def counters_snapshot(self) -> Dict[str, int]:
        """A consistent view of the lifetime counters (for the monitor).

        ``value_bytes`` is folded in here, under the same lock acquisition
        as the other counters: computing it separately from ``entries()``
        would tear — entries created/evicted between the two lock takes
        would make the byte total disagree with the entry count.
        ``tracked_bytes`` is included for the same reason: the governor's
        health view must describe the same instant as the entry count, not
        a second lock take during which a shed or insert may have run.
        """
        with self._lock:
            recycler = (
                self.recycler.stats()
                if self.recycler is not None
                else {
                    "entries": 0,
                    "bytes": 0,
                    "hits": 0,
                    "misses": 0,
                    "stale": 0,
                    "stored": 0,
                    "evictions": 0,
                }
            )
            return {
                "entries": len(self._entries),
                "value_bytes": sum(
                    e.metrics.size_bytes for e in self._entries.values()
                ),
                "tracked_bytes": self._tracked_bytes_locked(),
                "hits": self.total_hits,
                "misses": self.total_misses,
                "evictions": self.total_evictions,
                "maintenance_runs": self.total_maintenance_runs,
                "memo_hits": self.total_memo_hits,
                "memo_misses": self.total_memo_misses,
                "memo_bypass": self.total_memo_bypass,
                "recycler_entries": recycler["entries"],
                "recycler_bytes": recycler["bytes"],
                "recycler_hits": recycler["hits"],
                "recycler_misses": recycler["misses"],
                "recycler_stale": recycler["stale"],
                "recycler_stored": recycler["stored"],
                "recycler_evictions": recycler["evictions"],
                "refresh_advances": self.total_refresh_advances,
                "refresh_rebuilds": self.total_refresh_rebuilds,
            }

    def refresh_obs_gauges(self) -> None:
        """Push the current entry-map state into the metrics gauges.

        Called on scrape (``Database.export_metrics``) rather than per
        query: gauge freshness is a scrape-time concern and this walk
        takes the manager lock.
        """
        with self._lock:
            entries = list(self._entries.values())
            self.obs.cache_entries.set(len(entries))
            self.obs.cache_value_bytes.set(
                sum(e.metrics.size_bytes for e in entries)
            )
            self.obs.cache_profit_per_byte.set(
                sum(e.metrics.profit() for e in entries)
            )
            self.obs.governor_tracked_bytes.set(self._tracked_bytes_locked())
            if self.recycler is not None:
                recycler = self.recycler.stats()
                self.obs.recycler_bytes.set(recycler["bytes"])
                self.obs.recycler_entries.set(recycler["entries"])
        self.obs.plan_cache_entries.set(len(self.plan_cache))
        tiers = {"hot": 0, "cold_resident": 0, "cold_mapped": 0}
        for name in self._catalog.table_names():
            for tier, value in self._catalog.table(name).tier_bytes().items():
                tiers[tier] += value
        for tier, value in tiers.items():
            self.obs.storage_tier_bytes.labels(tier).set(value)

    def evict_for_table(self, table_name: str) -> int:
        """Drop only the entries whose key references ``table_name``.

        Used by ``Database.drop_table``: entries over unrelated tables are
        unaffected by the drop and keep serving hits.  Returns the number of
        evicted entries.
        """
        with self._lock:
            victims = [
                key
                for key in self._entries
                if any(name == table_name for name, _ in key.table_ids)
            ]
            for key in victims:
                del self._entries[key]
                self.total_evictions += 1
            if victims:
                self.obs.cache_evictions.inc(len(victims))
        dropped_plans = self.plan_cache.evict_for_table(table_name)
        if dropped_plans:
            self.obs.plan_cache_evictions.inc(dropped_plans)
        if self.recycler is not None:
            self.recycler.evict_for_table(table_name)
        return len(victims)

    def explain(self, query, strategy=None, star_join_tables=None):
        """Dry-run plan: see :func:`repro.core.explain.explain_query`."""
        from .explain import explain_query

        return explain_query(self, query, strategy, star_join_tables)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan_for(
        self,
        query: Union[str, AggregateQuery],
        strategy: Optional[ExecutionStrategy] = None,
        trace: Optional[QueryTrace] = None,
        star_join_tables=None,
    ) -> PhysicalPlan:
        """The :class:`PhysicalPlan` answering ``query`` under ``strategy``.

        Accepts raw SQL text or a query object.  The plan cache is probed
        first — for SQL text by the raw statement (a hit skips parse *and*
        bind), then by the bound statement's canonical key (a hit covers
        re-spellings of the same statement).  A valid cached plan is an
        integer-compare away (:func:`~repro.plan.physical.plan_signature`);
        otherwise the statement is bound and lowered, and the fresh plan is
        admitted under both slots.

        ``star_join_tables`` is the per-statement star-join override
        (None = config override, then automatic detection).  It is part
        of both cache-slot keys: the same statement planned under two
        overrides yields two distinct plans with distinct combo sets.

        EXPLAIN, EXPLAIN ANALYZE, and :meth:`execute` all call this — they
        consume the same plan object, so they cannot drift.
        """
        strategy = strategy if strategy is not None else self.config.default_strategy
        override = normalize_star_join_override(star_join_tables)
        sql = query if isinstance(query, str) else None
        sql_key = ("sql", sql, strategy.value, override) if sql is not None else None
        bind_span = trace.child("bind") if trace is not None else None
        plan = None
        outcome: Optional[str] = None
        if sql_key is not None:
            plan, outcome = self.plan_cache.get(sql_key, self._signature_of)
        bound = None
        if plan is None:
            parsed = parse_sql(sql) if sql is not None else query
            bound = self._binder.bind(parsed)
        if bind_span is not None:
            bind_span.finish()
        plan_span = trace.child("plan") if trace is not None else None
        if plan is None:
            canon_key = ("canon", bound.canonical_key(), strategy.value, override)
            plan, canon_outcome = self.plan_cache.get(canon_key, self._signature_of)
            if outcome is None or plan is not None or canon_outcome == "invalidated":
                outcome = canon_outcome
            if plan is None:
                build_started = time.perf_counter()
                with self._lock:
                    mds, agings = list(self._mds), list(self._agings)
                plan = self._planner.build(
                    self._binder.plan(bound), strategy, mds, agings,
                    star_override=override,
                )
                self.obs.plan_build_seconds.observe(
                    time.perf_counter() - build_started
                )
                self.plan_cache.put(
                    canon_key,
                    plan,
                    alias_keys=(sql_key,) if sql_key is not None else (),
                )
            elif sql_key is not None:
                # Canonical hit for a new spelling: future repeats of this
                # exact text skip parse/bind too.
                self.plan_cache.add_alias(sql_key, canon_key)
        if plan_span is not None:
            plan_span.finish()
            if self.plan_cache.enabled and outcome is not None:
                plan_span.attrs["plan_cache"] = outcome
        if self.plan_cache.enabled and outcome is not None:
            self.obs.plan_cache_lookups.labels(outcome).inc()
        return plan

    def _signature_of(self, plan: PhysicalPlan) -> Tuple:
        """The current validity fingerprint of a cached plan's tables.

        Reuses the plan's stored exclusion decision: exclusions are a pure
        function of (query, override, config flag, table versions), and
        the versions are in the signature — so a delta going empty→
        non-empty bumps its table's version, mismatches here, and forces
        a rebuild that re-detects.
        """
        return plan_signature(
            self._catalog,
            self.config,
            plan.table_names(),
            star_override=plan.star_override,
            excluded=plan.excluded,
        )

    # ------------------------------------------------------------------
    # query execution (Fig. 3)
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Union[str, AggregateQuery],
        txn: Transaction,
        strategy: Optional[ExecutionStrategy] = None,
        trace: Optional[QueryTrace] = None,
        cancel=None,
        star_join_tables=None,
    ) -> Tuple[GroupedAggregates, CacheQueryReport]:
        """Answer a query through the cache pipeline (Fig. 3); returns (grouped result, report).

        ``cancel`` (a :class:`~repro.governor.deadline.CancelToken`) is
        checked at every subjoin boundary down the pipeline; an expired or
        cancelled token aborts with a typed
        :class:`~repro.errors.QueryAborted` and leaves no torn state —
        memos install only after a fully successful run, and statistics
        are recorded only for completed queries.

        With a governor attached, the cached path is additionally guarded
        by the cache circuit breaker: while it is open the query bypasses
        the cache entirely (``degraded_reason="breaker_open"``), and a
        failure *inside* cached execution feeds the breaker and falls
        back to a clean from-scratch run over the base tables
        (``degraded_reason="fallback"``) instead of failing the query.
        """
        strategy = strategy if strategy is not None else self.config.default_strategy
        report = CacheQueryReport(strategy=strategy)
        started = time.perf_counter()
        plan = self.plan_for(query, strategy, trace, star_join_tables)
        report.plan = plan
        bound = plan.query
        if cancel is not None:
            cancel.check()
        governor = self.governor
        degraded = ""
        if (
            strategy.uses_cache
            and plan.cacheable
            and governor is not None
            and not governor.cache_path_allowed()
        ):
            degraded = "breaker_open"
            governor.record_degraded_query(degraded)
        if not strategy.uses_cache or not plan.cacheable or degraded:
            if strategy.uses_cache:
                report.fallback_uncached = True
            report.degraded_reason = degraded
            scan_span = (
                trace.child("uncached_scan", fallback=report.fallback_uncached)
                if trace is not None
                else None
            )
            grouped = self._executor.execute(
                bound,
                txn.snapshot,
                # A degraded query carries a *cached* plan whose subjoins
                # are compensation-only; the full partition product
                # (combos=None) is the correct uncached evaluation.
                combos=None if degraded else plan.evaluated_specs(),
                stats=report.executor_stats,
                cancel=cancel,
            )
            if scan_span is not None:
                scan_span.finish()
            report.time_total = time.perf_counter() - started
            self._record_query_obs(report)
            self._maybe_shed()
            return grouped, report
        try:
            with self._lock:
                self._clock += 1
            result = GroupedAggregates(bound.aggregates)
            entries = [
                self._apply_main_entry(
                    bound, combo, key, txn, result, report, trace, cancel
                )
                for combo, key in zip(plan.cached_combos, plan.cache_keys)
            ]
            self._apply_delta_compensation(
                plan, txn, result, report, trace, entries, cancel
            )
        except QueryAborted:
            raise  # a deadline/cancel abort is not a cache failure
        except Exception as exc:
            if governor is None:
                raise
            governor.record_cache_failure(exc)
            governor.record_degraded_query("fallback")
            return self._fallback_uncached(
                bound, txn, strategy, plan, trace, cancel, started
            )
        if governor is not None:
            governor.record_cache_success()
        report.time_total = time.perf_counter() - started
        self._record_query_obs(report)
        self._maybe_shed()
        return result, report

    def _fallback_uncached(
        self,
        bound: AggregateQuery,
        txn: Transaction,
        strategy: ExecutionStrategy,
        plan: PhysicalPlan,
        trace: Optional[QueryTrace],
        cancel,
        started: float,
    ) -> Tuple[GroupedAggregates, CacheQueryReport]:
        """Recompute a failed cached query from the base tables.

        Runs with a **fresh** report (and fresh executor stats) so nothing
        from the torn cached attempt leaks into what the caller sees.
        """
        report = CacheQueryReport(
            strategy=strategy,
            plan=plan,
            fallback_uncached=True,
            degraded_reason="fallback",
        )
        scan_span = (
            trace.child("uncached_scan", fallback=True, degraded=True)
            if trace is not None
            else None
        )
        grouped = self._executor.execute(
            bound,
            txn.snapshot,
            combos=None,
            stats=report.executor_stats,
            cancel=cancel,
        )
        if scan_span is not None:
            scan_span.finish()
        report.time_total = time.perf_counter() - started
        self._record_query_obs(report)
        self._maybe_shed()
        return grouped, report

    def _record_query_obs(self, report: CacheQueryReport) -> None:
        """Fold one finished query's report into the metrics registry.

        The subjoin counters come from the executor stats (evaluated and
        empty subjoins, rows aggregated); the per-reason prune counters are
        folded once per query from the plan's prune report (see
        :meth:`_record_prune_obs`), so nothing here double-counts.
        """
        obs = self.obs
        if not obs.enabled:
            return
        obs.queries.labels(report.strategy.name.lower()).inc()
        obs.query_seconds.observe(report.time_total)
        stats = report.executor_stats
        if stats.combos_evaluated:
            obs.subjoins_evaluated.inc(stats.combos_evaluated)
        if stats.combos_empty:
            obs.subjoins_empty.inc(stats.combos_empty)
        if stats.rows_aggregated:
            obs.rows_aggregated.inc(stats.rows_aggregated)
        if report.time_main_compensation:
            obs.main_compensation_seconds.observe(report.time_main_compensation)
        if report.time_delta_compensation:
            obs.delta_compensation_seconds.observe(report.time_delta_compensation)
        if report.invalidated_rows_compensated:
            obs.compensated_rows.inc(report.invalidated_rows_compensated)

    # ------------------------------------------------------------------
    def _apply_main_entry(
        self,
        bound: AggregateQuery,
        combo: Dict,
        key: CacheKey,
        txn: Transaction,
        result: GroupedAggregates,
        report: CacheQueryReport,
        trace: Optional[QueryTrace] = None,
        cancel=None,
    ) -> Optional[AggregateCacheEntry]:
        """Look up / create the entry for one all-main combination and fold
        its main-compensated value into ``result``.

        ``key`` was computed by the planner — on a plan-cache hit the key
        derivation is skipped entirely.  Returns the entry whose cached
        value answered this combination, or None when the combination was
        answered by a direct scan (admission rejected / entry too new) —
        the delta-memo routing needs to know which entry, if any, owns the
        compensation state this query is about to compute.
        """
        span = (
            trace.child("cache_lookup", combo=describe_partitions(combo))
            if trace is not None
            else None
        )
        lookup_started = time.perf_counter()
        if cancel is not None:
            cancel.check()  # per-combination boundary
        with self._lock:
            entry = self._entries.get(key)
            recomputed = entry is not None and (
                not entry.is_active or not entry.matches_current_partitions()
            )
            if recomputed:
                self._entries.pop(key, None)
                report.entries_recomputed += 1
                entry = None
            if entry is None:
                self.total_misses += 1
                outcome = "recomputed" if recomputed else "miss"
            else:
                report.cache_hits += 1
                self.total_hits += 1
                outcome = "hit"
        self.obs.cache_lookups.labels(outcome).inc()
        if span is not None:
            span.attrs["outcome"] = outcome
        if entry is None:
            build_span = span.child("build_entry") if span is not None else None
            entry = self._create_entry(bound, combo, key, report, cancel)
            if build_span is not None:
                build_span.finish()
                build_span.attrs["admitted"] = entry is not None
        report.time_cache_lookup_or_build += time.perf_counter() - lookup_started
        try:
            if entry is None:
                # Admission rejected: compute this query's main contribution
                # directly at the transaction snapshot, uncached.
                self._direct_main_scan(
                    bound, combo, txn, result, report, span,
                    "admission_rejected", cancel,
                )
                return None
            if txn.snapshot < entry.snapshot:
                # The entry is anchored at a newer snapshot than this reader
                # (time travel, or a transaction begun before the last merge).
                # Main compensation can only *subtract*; rows the old reader
                # should see that the entry no longer carries cannot be added
                # back, so answer this combination directly from the base data.
                self._direct_main_scan(
                    bound, combo, txn, result, report, span,
                    "entry_too_new", cancel,
                )
                return None
            with self._lock:
                entry.metrics.record_use(self._clock)
            if entry.is_clean_for(txn.snapshot):
                # Fast path: nothing was invalidated since the entry snapshot,
                # so the cached value contributes as-is (merge copies states).
                result.merge(entry.value)
                return entry
            contribution = entry.value.copy()
            comp_span = span.child("main_compensation") if span is not None else None
            comp_started = time.perf_counter()
            rows = apply_main_compensation(
                entry, self._executor, txn.snapshot, contribution
            )
            elapsed = time.perf_counter() - comp_started
            if comp_span is not None:
                comp_span.finish()
                comp_span.attrs["rows_compensated"] = rows
            entry.metrics.compensation_time_main += elapsed
            report.time_main_compensation += elapsed
            report.invalidated_rows_compensated += rows
            result.merge(contribution)
            return entry
        finally:
            if span is not None:
                span.finish()

    def _direct_main_scan(
        self,
        bound: AggregateQuery,
        combo: Dict,
        txn: Transaction,
        result: GroupedAggregates,
        report: CacheQueryReport,
        parent_span: Optional[Span],
        why: str,
        cancel=None,
    ) -> None:
        """Answer one all-main combination straight from the base data."""
        scan_span = (
            parent_span.child("direct_scan", reason=why)
            if parent_span is not None
            else None
        )
        self._executor.execute(
            bound,
            txn.snapshot,
            combos=[ComboSpec(dict(combo))],
            into=result,
            stats=report.executor_stats,
            cancel=cancel,
        )
        if scan_span is not None:
            scan_span.finish()

    def _create_entry(
        self,
        bound: AggregateQuery,
        combo: Dict,
        key: CacheKey,
        report: CacheQueryReport,
        cancel=None,
    ) -> Optional[AggregateCacheEntry]:
        """Compute the main aggregate with global visibility; admit or not.

        The (expensive) aggregate build runs without the manager lock held;
        only the admission decision and the entry-map insert are serialized.
        If another thread admitted an equivalent entry while this one was
        computing, the first entry wins and this build is discarded.
        """
        global_snapshot = self._views.txn_manager.global_snapshot()
        build_started = time.perf_counter()
        value = self._executor.execute(
            bound, global_snapshot, combos=[ComboSpec(dict(combo))], cancel=cancel
        )
        creation_time = time.perf_counter() - build_started
        self.obs.cache_build_seconds.observe(creation_time)
        records = value.total_rows_aggregated()
        request = AdmissionRequest(bound, value, creation_time, records)
        visibility = {
            alias: partition.visibility(global_snapshot)
            for alias, partition in combo.items()
        }
        tables = {
            ref.alias: self._catalog.table(ref.table) for ref in bound.tables
        }
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing.is_active and (
                existing.matches_current_partitions()
            ):
                report.cache_hits += 1
                self.total_hits += 1
                return existing
            if not self._admission.admit(request):
                report.admission_rejected += 1
                return None
            metrics = CacheMetrics(
                size_bytes=value.approximate_nbytes(),
                aggregated_records_main=records,
                creation_time_main=creation_time,
                last_access_clock=self._clock,
            )
            entry = AggregateCacheEntry(
                key=key,
                query=bound,
                value=value,
                tables=tables,
                main_partitions=dict(combo),
                visibility=visibility,
                snapshot=global_snapshot,
                metrics=metrics,
            )
            self._entries[key] = entry
            report.entries_created += 1
            self._run_eviction()
            # The freshly inserted entry may itself have been evicted.
            return self._entries.get(key)

    def _run_eviction(self) -> None:
        with self._lock:
            victims = self._eviction.select_victims(
                self._entries, self.config.max_entries, self.config.max_bytes
            )
            for key in victims:
                del self._entries[key]
                self.total_evictions += 1
            if victims:
                self.obs.cache_evictions.inc(len(victims))

    # ------------------------------------------------------------------
    # memory budget (governor-driven shedding)
    # ------------------------------------------------------------------
    def tracked_bytes(self) -> int:
        """Approximate bytes charged against the memory budget: cached
        values, delta memos, and the plan/parse caches."""
        with self._lock:
            return self._tracked_bytes_locked()

    def _tracked_bytes_locked(self) -> int:
        total = 0
        for entry in self._entries.values():
            total += entry.metrics.size_bytes
            memo = entry.delta_memo
            if memo is not None:
                total += _memo_nbytes(memo)
        total += len(self.plan_cache) * _PLAN_CACHE_BYTES_PER_ENTRY
        total += (
            parse_cache_stats()["entries"] * _PARSE_CACHE_BYTES_PER_ENTRY
        )
        total += self._cold_overhead_bytes()
        if self.recycler is not None:
            total += self.recycler.nbytes()
        return total

    def _cold_overhead_bytes(self) -> int:
        """Resident bytes held *on behalf of* mapped cold partitions —
        loaded lazy dictionaries.  Counted against the budget (they are
        pure re-read caches) and shed first."""
        total = 0
        for name in self._catalog.table_names():
            for partition in self._catalog.table(name).partitions():
                if partition.storage_tier == "mapped":
                    total += partition.nbytes_resident()
        return total

    def _shed_cold_locked(self) -> int:
        """Release every loaded cold handle; returns bytes freed."""
        freed = 0
        for name in self._catalog.table_names():
            for partition in self._catalog.table(name).partitions():
                if partition.storage_tier == "mapped":
                    freed += partition.release_cold()
        return freed

    def _maybe_shed(self) -> None:
        """Post-query hook: shed down to the governor's budget, if any."""
        governor = self.governor
        if governor is None or governor.memory_budget_bytes is None:
            return
        self.shed_to_budget(governor.memory_budget_bytes)

    def shed_to_budget(self, budget_bytes: int) -> Dict[str, int]:
        """Shed cache state until ``tracked_bytes() <= budget_bytes``.

        Shedding follows profit order — cheapest-to-rebuild state first:

        0. **mapped cold columns** (released lazy dictionaries / memmap
           handles re-fault in from the cold files on next access — no
           recompute at all);
        1. **recycled subjoins** (pure recomputable join intermediates —
           dropping them costs the next overlapping query one evaluation);
        2. **delta memos** before entries (a memo only accelerates delta
           compensation; the entry keeps serving hits without it),
           least-recently-used entries' memos first;
        3. **cold entries before hot** via the existing eviction
           machinery (:class:`ProfitEviction` — lowest profit first);
        4. the **plan and parse caches** last (pure recompute caches).

        Returns the per-kind shed counts; totals are recorded on the
        governor (``repro_governor_sheds_total``).
        """
        shed = {"cold": 0, "recycler": 0, "memo": 0, "entry": 0, "plan": 0}
        freed = {"cold": 0, "recycler": 0, "memo": 0, "entry": 0, "plan": 0}
        evicted = 0
        plan_dropped = 0
        with self._lock:
            tracked = self._tracked_bytes_locked()
            if tracked <= budget_bytes:
                if self.governor is not None:
                    self.governor.set_tracked_bytes(tracked)
                return shed
            cold_freed = self._shed_cold_locked()
            if cold_freed:
                tracked -= cold_freed
                freed["cold"] = cold_freed
                shed["cold"] = 1
                if tracked <= budget_bytes:
                    if self.governor is not None:
                        self.governor.record_shed("cold", 1, cold_freed)
                        self.governor.set_tracked_bytes(tracked)
                    return shed
            if tracked > budget_bytes and self.recycler is not None:
                dropped, recycler_freed = self.recycler.clear()
                if dropped:
                    tracked -= recycler_freed
                    freed["recycler"] = recycler_freed
                    shed["recycler"] = dropped
            by_lru = sorted(
                self._entries.values(),
                key=lambda e: e.metrics.last_access_clock,
            )
            for entry in by_lru:
                if tracked <= budget_bytes:
                    break
                memo = entry.delta_memo
                if memo is None:
                    continue
                nbytes = _memo_nbytes(memo)
                entry.delta_memo = None
                tracked -= nbytes
                freed["memo"] += nbytes
                shed["memo"] += 1
            if tracked > budget_bytes:
                # select_victims budgets over entry value bytes only, so
                # subtract the non-entry overhead from the global budget.
                overhead = tracked - sum(
                    e.metrics.size_bytes for e in self._entries.values()
                )
                victims = self._eviction.select_victims(
                    self._entries,
                    None,
                    max(0, budget_bytes - overhead),
                )
                for key in victims:
                    nbytes = self._entries[key].metrics.size_bytes
                    del self._entries[key]
                    self.total_evictions += 1
                    tracked -= nbytes
                    freed["entry"] += nbytes
                    shed["entry"] += 1
                evicted = len(victims)
            if tracked > budget_bytes:
                plan_dropped = self.plan_cache.clear()
                parse_entries = parse_cache_stats()["entries"]
                clear_parse_cache()
                shed["plan"] = plan_dropped + parse_entries
                freed["plan"] = (
                    plan_dropped * _PLAN_CACHE_BYTES_PER_ENTRY
                    + parse_entries * _PARSE_CACHE_BYTES_PER_ENTRY
                )
                tracked -= freed["plan"]
            final_tracked = tracked
        if evicted:
            self.obs.cache_evictions.inc(evicted)
        if plan_dropped:
            self.obs.plan_cache_evictions.inc(plan_dropped)
        governor = self.governor
        if governor is not None:
            for kind, count in shed.items():
                if count:
                    governor.record_shed(kind, count, freed[kind])
            governor.set_tracked_bytes(final_tracked)
        return shed

    def _apply_delta_compensation(
        self,
        plan: PhysicalPlan,
        txn: Transaction,
        result: GroupedAggregates,
        report: CacheQueryReport,
        trace: Optional[QueryTrace] = None,
        entries: Optional[List[Optional[AggregateCacheEntry]]] = None,
        cancel=None,
    ) -> None:
        """Aggregate the plan's surviving compensation subjoins into ``result``.

        The pruning work already happened at plan time; here the pruned
        subjoins only emit their trace spans, and the evaluated ones run
        through the executor with their pushdown filters attached.

        When the query was answered by exactly one cache entry, the entry's
        delta memo (see :mod:`repro.core.delta_memo`) routes the work:

        * ``incremental`` — the memo's folded compensation value is merged
          as-is and only the rows appended past its watermarks are scanned;
        * ``full`` — everything is recomputed and the result installed as a
          fresh memo for the next hit;
        * ``bypass`` — the memo layer steps aside (disabled, hot/cold
          multi-entry plans, direct-scan answers, older readers) and the
          compensation union runs exactly as without it.
        """
        if self.fault_injector is not None:
            self.fault_injector.fire("cache.compensation")
        span = trace.child("delta_compensation") if trace is not None else None
        # Pruned subjoins never reach the executor, so their spans are
        # appended while walking the plan; the evaluated ones are appended
        # by the executor in combination order (full/bypass) or synthesized
        # from the planned subjoin list (incremental).  One sink, every
        # subjoin exactly once — EXPLAIN ANALYZE parity depends on it.
        span_sink = span.children if span is not None else None
        report.prune = replace(plan.prune)
        # Synopsis skips are a property of the *current* storage tier, not
        # of plan time: demotion deliberately leaves cached plans valid, so
        # a plan built pre-demotion undercounts and must be re-derived from
        # the live partitions (promotion back only happens via merge, which
        # invalidates the plan anyway).
        report.prune.synopsis_skips = _count_synopsis_skips(plan)
        mode, reason, entry, memo = self._route_delta_memo(plan, txn, entries)
        report.delta_memo_mode = mode
        report.delta_memo_reason = reason
        recycle = self._recycle_context(plan, txn)
        comp_started = time.perf_counter()
        if mode == "incremental":
            self._delta_compensation_incremental(
                plan, txn, result, report, span_sink, entry, memo, cancel,
                recycle,
            )
        else:
            self._delta_compensation_full(
                plan,
                txn,
                result,
                report,
                span_sink,
                entry if mode == "full" else None,
                memo,
                cancel,
                recycle,
            )
        elapsed = time.perf_counter() - comp_started
        report.time_delta_compensation += elapsed
        # Compensation-pressure accounting: attribute this query's delta-
        # compensation time to the entries it compensated for, so the merge
        # advisor's pressure signal reflects real work.  The counter is
        # cumulative until the entry's *successful* maintenance resets it
        # (see finish_entry_maintenance) — a cancelled two-phase merge
        # must neither reset nor double-count it.
        owners = [e for e in (entries or []) if e is not None]
        if owners:
            share = elapsed / len(owners)
            with self._lock:
                for owner in owners:
                    owner.metrics.compensation_time_delta += share
        self._finish_recycle(recycle, report)
        self._record_prune_obs(report.prune)
        outcome = {"incremental": "hit", "full": "miss", "bypass": "bypass"}[mode]
        with self._lock:
            if mode == "incremental":
                self.total_memo_hits += 1
            elif mode == "full":
                self.total_memo_misses += 1
            else:
                self.total_memo_bypass += 1
        if self.obs.enabled:
            self.obs.delta_memo_lookups.labels(outcome).inc()
            if report.delta_memo_rows_saved:
                self.obs.delta_memo_rows_saved.inc(report.delta_memo_rows_saved)
        if span is not None:
            span.finish()
            span.attrs["subjoins_total"] = report.prune.combos_total
            span.attrs["subjoins_pruned"] = report.prune.pruned_total
            if plan.excluded:
                span.attrs["excluded"] = [e.describe() for e in plan.excluded]
                span.attrs["subjoins_excluded"] = report.prune.combos_excluded
            span.attrs["compensation"] = mode
            if reason:
                span.attrs["compensation_reason"] = reason
            if mode == "incremental":
                span.attrs["rows_saved"] = report.delta_memo_rows_saved

    def _recycle_context(
        self, plan: PhysicalPlan, txn: Transaction
    ) -> Optional[RecycleContext]:
        """Mint a per-query recycler handle, or None when recycling is off."""
        if self.recycler is None:
            return None
        return self.recycler.context(
            plan.recycle_fingerprint(), plan.signature, txn.snapshot
        )

    def _finish_recycle(
        self,
        recycle: Optional[RecycleContext],
        report: Optional[CacheQueryReport],
    ) -> None:
        """Fold one context's outcome counts into the report and metrics."""
        if recycle is None:
            return
        if report is not None:
            report.recycler_hits += recycle.hits
            report.recycler_misses += recycle.misses
            report.recycler_stale += recycle.stale
            report.recycler_stored += recycle.stored
        if self.obs.enabled:
            for outcome, count in (
                ("hit", recycle.hits),
                ("miss", recycle.misses),
                ("stale", recycle.stale),
                ("bypass", recycle.bypass),
            ):
                if count:
                    self.obs.recycler_lookups.labels(outcome).inc(count)

    def _route_delta_memo(
        self,
        plan: PhysicalPlan,
        txn: Transaction,
        entries: Optional[List[Optional[AggregateCacheEntry]]],
    ) -> Tuple[str, str, Optional[AggregateCacheEntry], Optional[DeltaMemo]]:
        """Pick the delta-compensation mode for this query.

        Returns ``(mode, reason, entry, observed_memo)``; ``observed_memo``
        is the memo object read under the lock — install/advance later
        compare-and-swaps against exactly this object, so a concurrent
        reader that raced past us cannot have its newer memo clobbered.
        """
        if not self.config.delta_memo:
            return "bypass", "disabled", None, None
        if entries is None or len(plan.cache_keys) != 1:
            # Hot/cold plans answer through several entries; the folded
            # compensation value is shared across them and belongs to no
            # single entry, so the memo layer does not engage.
            return "bypass", "multi_entry", None, None
        if len(entries) != 1 or entries[0] is None:
            return "bypass", "no_entry", None, None
        entry = entries[0]
        with self._lock:
            memo = entry.delta_memo
        verdict = classify_memo(
            memo,
            txn.snapshot,
            plan_partitions(plan.subjoins),
            plan.signature,
            plan.excluded_fingerprint(),
        )
        if verdict == "older_reader":
            # This reader predates the memo's anchor; the memo stays put
            # for newer readers and this query compensates from scratch.
            return "bypass", "older_reader", entry, memo
        if verdict == "rebuild":
            return "full", "" if memo is None else "stale", entry, memo
        return "incremental", "", entry, memo

    def _delta_compensation_full(
        self,
        plan: PhysicalPlan,
        txn: Transaction,
        result: GroupedAggregates,
        report: CacheQueryReport,
        span_sink: Optional[List[Span]],
        entry: Optional[AggregateCacheEntry],
        observed: Optional[DeltaMemo],
        cancel=None,
        recycle: Optional[RecycleContext] = None,
    ) -> None:
        """Evaluate every surviving subjoin; with ``entry`` set, capture the
        folded compensation value as a fresh memo on it."""
        combos: List[ComboSpec] = []
        for sub in plan.subjoins:
            if sub.action == "pruned":
                if span_sink is not None:
                    span_sink.append(_pruned_span(sub))
                continue
            combos.append(sub.to_spec())
        into = result if entry is None else result.new_like()
        self._executor.execute(
            plan.query,
            txn.snapshot,
            combos=combos,
            into=into,
            stats=report.executor_stats,
            span_sink=span_sink,
            cancel=cancel,
            recycle=recycle,
        )
        if entry is None:
            return
        result.merge(into)
        fresh = build_memo(
            into,
            txn.snapshot,
            plan_partitions(plan.subjoins),
            plan.signature,
            plan.excluded_fingerprint(),
        )
        with self._lock:
            if entry.delta_memo is observed and entry.is_active:
                entry.delta_memo = fresh

    def _delta_compensation_incremental(
        self,
        plan: PhysicalPlan,
        txn: Transaction,
        result: GroupedAggregates,
        report: CacheQueryReport,
        span_sink: Optional[List[Span]],
        entry: AggregateCacheEntry,
        memo: DeltaMemo,
        cancel=None,
        recycle: Optional[RecycleContext] = None,
    ) -> None:
        """Merge the memo's folded value and scan only the delta suffix.

        The executor evaluates the inclusion–exclusion expansion of the
        grown subjoins (see :func:`~repro.core.delta_memo.incremental_specs`)
        into a private aggregate, which is merged into both the result and
        the advanced memo.  The advance is installed compare-and-swap: a
        losing racer keeps its correct local result and discards its memo.
        """
        specs, spec_counts, rows_saved = incremental_specs(
            plan.subjoins, memo.watermarks
        )
        report.delta_memo_rows_saved = rows_saved
        result.merge(memo.folded)
        inc: Optional[GroupedAggregates] = None
        inner: List[Span] = []
        if specs:
            inc = result.new_like()
            self._executor.execute(
                plan.query,
                txn.snapshot,
                combos=specs,
                into=inc,
                stats=report.executor_stats,
                span_sink=inner if span_sink is not None else None,
                cancel=cancel,
                recycle=recycle,
            )
            result.merge(inc)
        if span_sink is not None:
            self._synthesize_memo_spans(plan, spec_counts, inner, span_sink)
        if specs or txn.snapshot != memo.anchor:
            advanced = advance_memo(memo, txn.snapshot, inc, plan.signature)
            with self._lock:
                if entry.delta_memo is memo and entry.is_active:
                    entry.delta_memo = advanced

    @staticmethod
    def _synthesize_memo_spans(
        plan: PhysicalPlan,
        spec_counts: Dict[int, int],
        inner: List[Span],
        span_sink: List[Span],
    ) -> None:
        """Emit one "subjoin" span per planned subjoin for an incremental run.

        The executor produced one span per *expanded* spec; those become
        "memo_scan" children of their planned subjoin's span so trace
        consumers (parity tests, EXPLAIN ANALYZE) see the same one-span-
        per-planned-subjoin shape in every compensation mode.
        """
        worker = threading.current_thread().name
        cursor = 0
        for index, sub in enumerate(plan.subjoins):
            if sub.action == "pruned":
                span_sink.append(_pruned_span(sub))
                continue
            count = spec_counts.get(index, 0)
            children = inner[cursor : cursor + count]
            cursor += count
            duration = 0.0
            for child in children:
                child.name = "memo_scan"
                duration += child.duration
            span_sink.append(
                Span(
                    name="subjoin",
                    duration=duration,
                    attrs={
                        "combo": describe_partitions(sub.partitions),
                        "status": "evaluated" if count else "memoized",
                        "worker": worker,
                    },
                    children=children,
                )
            )

    def _record_prune_obs(self, prune: PruneReport) -> None:
        """Fold a query's prune report into the per-reason counters.

        The planner prunes without metrics (a cached plan would otherwise
        stop counting); instead every execution folds its plan's report
        here, so plan-cache hits and misses count identically.
        """
        obs = self.obs
        if not obs.enabled:
            return
        for reason, count in (
            ("empty", prune.pruned_empty),
            ("logical", prune.pruned_logical),
            ("dynamic", prune.pruned_dynamic),
        ):
            if count:
                obs.subjoins_pruned.labels(reason).inc(count)
        if prune.pushdown_filters:
            obs.pushdown_filters.inc(prune.pushdown_filters)
        if prune.synopsis_skips:
            obs.pruning_synopsis_skips.inc(prune.synopsis_skips)

    # ------------------------------------------------------------------
    # proactive refresh (idle-time maintenance)
    # ------------------------------------------------------------------
    def refresh_entries(
        self,
        snapshot: int,
        decisions: Optional[List[RefreshDecision]] = None,
        max_entries: Optional[int] = None,
    ) -> List[RefreshDecision]:
        """Apply cardinality-routed refreshes (see
        :func:`repro.core.maintenance.plan_cache_refresh`): advance or
        rebuild each routed entry's delta memo *now*, off the query path,
        so the next hit replays an already-advanced memo.  The refresh
        work also populates the subjoin recycler — overlapping queries
        arriving after the refresh recycle its subjoins directly.

        ``decisions`` defaults to a fresh plan; ``max_entries`` bounds the
        work per idle tick (remaining decisions are returned untouched).
        Returns the decision list with each applied action recorded.
        """
        if decisions is None:
            decisions = plan_cache_refresh(
                self, snapshot, self.config.refresh_rebuild_ratio
            )
        applied = 0
        for decision in decisions:
            if decision.action == "skip":
                if self.obs.enabled:
                    self.obs.cache_refresh.labels("skip").inc()
                continue
            if max_entries is not None and applied >= max_entries:
                break
            with self._lock:
                entry = self._entries.get(decision.key)
            if entry is None or not entry.is_active:
                decision.action, decision.reason = "skip", "entry_gone"
                continue
            try:
                plan = self.plan_for(entry.query)
            except Exception:
                decision.action, decision.reason = "skip", "unplannable"
                continue
            if len(plan.cache_keys) != 1:
                decision.action, decision.reason = "skip", "multi_entry"
                continue
            recycle = None
            if self.recycler is not None:
                recycle = self.recycler.context(
                    plan.recycle_fingerprint(), plan.signature, snapshot
                )
            if decision.action == "advance":
                done = self._refresh_advance(entry, plan, snapshot, recycle)
                if not done:
                    done = self._refresh_rebuild(entry, plan, snapshot, recycle)
                    if done:
                        decision.action, decision.reason = "rebuild", "advance_raced"
            else:
                done = self._refresh_rebuild(entry, plan, snapshot, recycle)
            self._finish_recycle(recycle, None)
            if not done:
                decision.action, decision.reason = "skip", "raced"
                continue
            applied += 1
            with self._lock:
                if decision.action == "advance":
                    self.total_refresh_advances += 1
                else:
                    self.total_refresh_rebuilds += 1
            if self.obs.enabled:
                self.obs.cache_refresh.labels(decision.action).inc()
        return decisions

    def _refresh_advance(
        self, entry, plan: PhysicalPlan, snapshot: int, recycle
    ) -> bool:
        """Incremental refresh: scan only the suffix past the memo's
        watermarks and CAS-install the advanced memo.  Returns False when
        the memo cannot advance (raced away / went stale) — the caller
        falls back to a rebuild."""
        with self._lock:
            memo = entry.delta_memo
        verdict = classify_memo(
            memo,
            snapshot,
            plan_partitions(plan.subjoins),
            plan.signature,
            plan.excluded_fingerprint(),
        )
        if verdict != "incremental":
            return False
        specs, _spec_counts, _rows_saved = incremental_specs(
            plan.subjoins, memo.watermarks
        )
        inc: Optional[GroupedAggregates] = None
        if specs:
            inc = memo.folded.new_like()
            self._executor.execute(
                plan.query,
                snapshot,
                combos=specs,
                into=inc,
                recycle=recycle,
            )
        if not specs and snapshot == memo.anchor:
            return True  # nothing to advance; the memo already serves here
        advanced = advance_memo(memo, snapshot, inc, plan.signature)
        with self._lock:
            if entry.delta_memo is memo and entry.is_active:
                entry.delta_memo = advanced
        return True

    def _refresh_rebuild(
        self, entry, plan: PhysicalPlan, snapshot: int, recycle
    ) -> bool:
        """Full refresh: recompute the compensation union into a throwaway
        aggregate and CAS-install the fresh memo."""
        with self._lock:
            observed = entry.delta_memo
        combos = [
            sub.to_spec() for sub in plan.subjoins if sub.action != "pruned"
        ]
        into = GroupedAggregates(plan.query.aggregates)
        self._executor.execute(
            plan.query,
            snapshot,
            combos=combos,
            into=into,
            recycle=recycle,
        )
        fresh = build_memo(
            into,
            snapshot,
            plan_partitions(plan.subjoins),
            plan.signature,
            plan.excluded_fingerprint(),
        )
        with self._lock:
            if entry.delta_memo is observed and entry.is_active:
                entry.delta_memo = fresh
                return True
        return False

    # ------------------------------------------------------------------
    # merge maintenance (MergeListener protocol)
    # ------------------------------------------------------------------
    def before_merge(self, event: MergeEvent) -> None:
        """Fold each affected entry forward while pre-merge state exists.

        The atomic merge announces every group event before any swap, so
        plans for several events accumulate here; ``after_merge`` consumes
        only its own event's plans and ``cancel_merge`` discards them when
        the merge aborts.
        """
        if self.fault_injector is not None:
            self.fault_injector.fire("cache.maintenance")
        with self._lock:
            self._before_merge_locked(event)

    def _before_merge_locked(self, event: MergeEvent) -> None:
        for key, entry in self._entries.items():
            if not entry.is_active:
                self._pending_drops.add(key)
                continue
            if self.config.maintenance_mode is MaintenanceMode.DROP:
                if self._entry_references(entry, event):
                    self._pending_drops.add(key)
                continue
            try:
                pending = plan_entry_maintenance(entry, event, self._executor)
            except StaleEntryError:
                self._pending_drops.add(key)
                continue
            if pending is not None:
                self._pending_maintenance.append(pending)

    def after_merge(self, event: MergeEvent) -> None:
        """Re-anchor maintained entries onto the rebuilt main partitions.

        A plan that fails to apply demotes gracefully: the entry is dropped
        (and recomputed on next use) instead of poisoning the merge — the
        swap already happened, so the merge must not fail here.
        """
        with self._lock:
            own = [p for p in self._pending_maintenance if p.event is event]
            self._pending_maintenance = [
                p for p in self._pending_maintenance if p.event is not event
            ]
            for pending in own:
                try:
                    finish_entry_maintenance(pending, event)
                except Exception:
                    self._pending_drops.add(pending.entry.key)
                    continue
                self.total_maintenance_runs += 1
                self.obs.cache_maintenance_runs.inc()
            for key in self._pending_drops:
                self._entries.pop(key, None)
            self._pending_drops = set()
        # The swap replaced the table's partitions, so recycled subjoins
        # referencing them can never validate again (identity + signature
        # both moved on) — drop them eagerly rather than letting them age
        # out as stale probes.  A *cancelled* merge keeps the pre-merge
        # partitions and deliberately does not purge.
        if self.recycler is not None:
            self.recycler.evict_for_table(event.table.name)

    def cancel_merge(self, event: Optional[MergeEvent] = None) -> None:
        """Discard maintenance planned for an aborted merge.

        Called by ``merge_table`` when the merge fails before the swap: the
        pre-merge partitions stay in place, so the affected entries remain
        valid as-is and the planned (never-applied) corrections are dropped.
        ``event=None`` discards everything pending.
        """
        with self._lock:
            if event is None:
                self._pending_maintenance = []
            else:
                self._pending_maintenance = [
                    p for p in self._pending_maintenance if p.event is not event
                ]
            if not self._pending_maintenance:
                self._pending_drops = set()

    @staticmethod
    def _entry_references(entry: AggregateCacheEntry, event: MergeEvent) -> bool:
        merging_main = event.table.partition(event.main_name)
        return any(
            partition is merging_main
            for partition in entry.main_partitions.values()
        )
