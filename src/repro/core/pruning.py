"""Dynamic join pruning and join predicate pushdown (Sections 5.1, 5.3, 5.4).

Given one compensation subjoin — an assignment of a concrete partition to
every table alias — the :class:`JoinPruner` decides whether the subjoin can
be skipped, and if not, which pushdown filters can narrow it:

1. **Empty-partition pruning**: a physically empty partition makes the whole
   subjoin empty (the common case for dimension-table deltas).
2. **Logical hot/cold pruning**: under a declared consistent aging, matching
   tuples share a temperature, so a subjoin pairing a hot partition of one
   table with a cold partition of the other is empty by definition
   (Section 5.4).
3. **Dynamic tid-range pruning** (Equation 5): for a join edge covered by a
   matching dependency, matching tuples agree on the MD's tid column; if the
   tid ranges of the two partitions' dictionaries are disjoint —
   ``max(R1[tid]) < min(S2[tid]) ∨ min(R1[tid]) > max(S2[tid])`` — the
   subjoin is empty.  Ranges come from the current dictionaries, which is
   exactly the paper's runtime prefilter.
4. **Join predicate pushdown** (Section 5.3): if the ranges overlap, tuples
   can still only match inside the *intersection* of the ranges, so a local
   tid-range predicate is pushed onto each side whose own range is wider.
   With referential integrity enforced (the default), a NULL tid implies a
   NULL or dangling foreign key — a row that cannot join — so the pushed
   filter is a plain range pair evaluable in dictionary-code space.  When
   the engine runs with RI enforcement off, matching dependencies are no
   longer guaranteed to hold and the pruner must be constructed with
   ``assume_md_integrity=False``, which keeps NULL-tid rows conservatively
   (``NOT (tid < lo OR tid > hi)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..query.expr import Cmp, Col, Expr, Lit, Not, Or
from ..query.query import AggregateQuery, JoinEdge
from ..storage.aging import ConsistentAging
from ..storage.partition import Partition
from .matching_dependency import MatchingDependency
from .strategies import ExecutionStrategy


@dataclass
class PruneReport:
    """Per-query pruning outcome counters.

    ``combos_total`` counts the *enumerated* variants; with star-join
    reduction active that is already the collapsed ``2^k - 1`` set, and
    ``combos_excluded`` records how many combinations the reduction kept
    from ever being enumerated (``excluded_tables`` = how many tables it
    pinned to their mains).  ``combos_total + combos_excluded`` recovers
    the exhaustive ``2^t - 1`` count.
    """

    combos_total: int = 0
    pruned_empty: int = 0
    pruned_logical: int = 0
    pruned_dynamic: int = 0
    pushdown_filters: int = 0
    evaluated: int = 0
    excluded_tables: int = 0
    combos_excluded: int = 0
    #: Pruned subjoins that involved at least one memory-mapped cold
    #: partition — cold disk scans avoided purely from the RAM synopsis.
    synopsis_skips: int = 0

    @property
    def pruned_total(self) -> int:
        """Total subjoins pruned across all mechanisms."""
        return self.pruned_empty + self.pruned_logical + self.pruned_dynamic


def partition_temperature(partition: Partition) -> Optional[str]:
    """"hot"/"cold" for aged partitions, None for plain main/delta."""
    prefix = partition.name.split("_", 1)[0]
    return prefix if prefix in ("hot", "cold") else None


@dataclass(frozen=True)
class _EdgeInfo:
    """A join edge annotated with its MD and consistent-aging coverage."""

    edge: JoinEdge
    md: Optional[MatchingDependency]
    aged_consistently: bool


class JoinPruner:
    """Prune/pushdown decisions for one query's compensation subjoins."""

    def __init__(
        self,
        query: AggregateQuery,
        mds: Sequence[MatchingDependency],
        consistent_agings: Sequence[ConsistentAging],
        strategy: ExecutionStrategy,
        predicate_pushdown: bool = False,
        assume_md_integrity: bool = True,
        obs=None,
    ):
        self._query = query
        self._strategy = strategy
        # Optional EngineMetrics: per-reason prune counters and pushdown
        # counts feed the metrics registry straight from the decision site.
        self._obs = obs
        self._pushdown = predicate_pushdown and strategy.prunes_dynamic
        self._assume_md_integrity = assume_md_integrity
        self._edges: List[_EdgeInfo] = []
        for edge in query.join_edges:
            table_a = query.table_of(edge.left_alias)
            table_b = query.table_of(edge.right_alias)
            covering_md = next(
                (
                    md
                    for md in mds
                    if md.covers_join(table_a, edge.left_col, table_b, edge.right_col)
                ),
                None,
            )
            aged = any(decl.covers(table_a, table_b) for decl in consistent_agings)
            self._edges.append(_EdgeInfo(edge, covering_md, aged))

    # ------------------------------------------------------------------
    def check(
        self, assignment: Dict[str, Partition]
    ) -> Tuple[Optional[str], Dict[str, List[Expr]]]:
        """Decide the fate of one subjoin.

        Returns ``(reason, extra_filters)``: ``reason`` is ``"empty"``,
        ``"logical"``, or ``"dynamic"`` when the subjoin is pruned (then
        ``extra_filters`` is empty), or ``None`` when it must be evaluated —
        possibly with pushdown filters per alias.
        """
        reason, pushdown = self._check(assignment)
        if self._obs is not None:
            if reason is not None:
                self._obs.subjoins_pruned.labels(reason).inc()
            elif pushdown:
                self._obs.pushdown_filters.inc(
                    sum(len(filters) for filters in pushdown.values())
                )
        return reason, pushdown

    def _check(
        self, assignment: Dict[str, Partition]
    ) -> Tuple[Optional[str], Dict[str, List[Expr]]]:
        if self._strategy.prunes_empty:
            for partition in assignment.values():
                if partition.row_count == 0:
                    return "empty", {}
        if not self._strategy.prunes_dynamic:
            return None, {}
        # Logical pruning first: a name comparison, cheaper than range checks.
        for info in self._edges:
            if not info.aged_consistently:
                continue
            temp_left = partition_temperature(assignment[info.edge.left_alias])
            temp_right = partition_temperature(assignment[info.edge.right_alias])
            if temp_left and temp_right and temp_left != temp_right:
                return "logical", {}
        pushdown: Dict[str, List[Expr]] = {}
        for info in self._edges:
            if info.md is None:
                continue
            left = assignment[info.edge.left_alias]
            right = assignment[info.edge.right_alias]
            tid = info.md.tid_column
            # The dictionary ranges below cover only non-NULL tids.  Under
            # enforced RI a NULL tid implies a NULL or dangling foreign key —
            # a row with no join partner — so range reasoning covers every
            # joinable row.  With RI off a NULL-tid row may still join
            # (a dangling child whose parent arrived later), which poisons
            # range reasoning in two directions: NULLs on *either* side make
            # a range-based prune unsound, and NULLs on one side make any
            # filter derived from that side's range unsound on the *other*
            # side (the NULL partner's tid is not in the range).
            # All three synopsis facts (null flags, ranges) come from the
            # partition's resident synopsis — for memory-mapped cold
            # partitions the verdict is reached without touching disk.
            left_nulls = not self._assume_md_integrity and left.has_nulls(tid)
            right_nulls = not self._assume_md_integrity and right.has_nulls(tid)
            nullable_tids = left_nulls or right_nulls
            left_range = (left.min_value(tid), left.max_value(tid))
            right_range = (right.min_value(tid), right.max_value(tid))
            if left_range[0] is None or right_range[0] is None:
                # One side has no non-NULL tid values at all.  With trusted
                # MDs no tuple can satisfy the implied equality, so the
                # subjoin is empty ("for an empty partition we define
                # min()/max() such that the prefilter is true").
                if nullable_tids:
                    continue  # all-NULL side may still join; nothing to push
                return "dynamic", {}
            if left_range[1] < right_range[0] or left_range[0] > right_range[1]:
                if not nullable_tids:
                    return "dynamic", {}
                # Disjoint ranges with NULLs present: only pairs with a NULL
                # tid on one side can match.  The pushdown below narrows
                # whichever side still admits a sound filter.
            if self._pushdown:
                self._collect_pushdown(
                    info, left_range, right_range, pushdown,
                    left_nulls, right_nulls,
                )
        return None, pushdown

    def _collect_pushdown(
        self,
        info: _EdgeInfo,
        left_range: Tuple,
        right_range: Tuple,
        pushdown: Dict[str, List[Expr]],
        left_nulls: bool = False,
        right_nulls: bool = False,
    ) -> None:
        """Narrow each side to the intersection of the two tid ranges.

        A side's filter bounds its tids by the *partner's* dictionary range,
        so it is only sound while every joinable partner row actually has
        its tid in that range — i.e. while the partner side is NULL-free.
        The side's own NULL rows are preserved by the null-safe filter form.
        """
        tid = info.md.tid_column
        lo = max(left_range[0], right_range[0])
        hi = min(left_range[1], right_range[1])
        for alias, own, partner_nulls in (
            (info.edge.left_alias, left_range, right_nulls),
            (info.edge.right_alias, right_range, left_nulls),
        ):
            if partner_nulls:
                continue  # a NULL partner may join outside any range
            if own[0] >= lo and own[1] <= hi:
                continue  # the side is already inside the intersection
            filters = pushdown.setdefault(alias, [])
            col = Col(tid, alias)
            if self._assume_md_integrity:
                # Plain range conjuncts: evaluable in code space; NULL-tid
                # rows are dropped, which is safe because under enforced RI
                # they cannot have a join partner on an MD-covered edge.
                filters.append(Cmp(">=", col, Lit(lo)))
                filters.append(Cmp("<=", col, Lit(hi)))
            else:
                filters.append(_null_safe_range(col, lo, hi))


def _null_safe_range(col: Col, lo, hi) -> Expr:
    """``NOT (col < lo OR col > hi)`` — true for values in [lo, hi] AND for
    NULL (a NULL comparison is false, so the negation keeps the row)."""
    return Not(Or([Cmp("<", col, Lit(lo)), Cmp(">", col, Lit(hi))]))
