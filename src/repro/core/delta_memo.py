"""Per-entry delta-compensation memos with append-only watermarks.

Between delta merges the delta partitions are append-only: updates and
deletes go through ``dts`` invalidation stamps (which bump the partition's
``invalidation_epoch``), and inserts only ever extend the row vectors.  The
compensation aggregate a cache hit computes over those partitions is
therefore *reusable*: once evaluated at snapshot ``S`` it stays correct for
every later snapshot until either rows are invalidated (epoch change) or
rows are appended — and appended rows can be folded in incrementally by
scanning just the suffix ``[watermark, row_count)`` of each partition.

A :class:`DeltaMemo` captures one such reusable state:

* ``folded`` — the grouped compensation aggregate of *all* evaluated
  subjoins at ``anchor``, over the watermarked prefix of every partition;
* ``watermarks`` — per-partition physical ``row_count`` at memo time;
* ``epochs`` — per-partition ``invalidation_epoch`` at memo time;
* ``horizon`` — the smallest MVCC stamp strictly greater than ``anchor``
  found anywhere in the covered prefixes (``inf`` when none).

The horizon pins down the correctness subtlety of reuse: a row *below* the
watermark can carry a stamp in ``(S, S']`` — a ``cts`` committed by a
transaction newer than the memo's reader, or a ``dts`` stamped before the
memo was taken by a not-yet-visible deleter.  Such a row changes visibility
between ``S`` and ``S'`` even though no epoch moved and no row was
appended.  Restricting reuse to ``anchor <= S' < horizon`` excludes exactly
these cases by construction; everything at or past the horizon triggers a
full rebuild.

Memos are **immutable**: queries run concurrently under the database's
shared read lock, so advancing a memo swaps in a new object (compare-and-
set on the owning entry) rather than mutating shared state.  A reader that
loses the race keeps its locally computed — still correct — result and
simply discards its advance.

Why per-partition watermarks suffice (no per-subjoin bookkeeping): prune
verdicts only change when a partition's dictionaries change, i.e. when it
grows.  A subjoin pruned at memo time was truly empty over the covered
prefixes (the pruner is conservative over *all* physical rows), so its
prefix contribution to ``folded`` is zero regardless of which strategy
later evaluates it; once it grows, its new rows sit above the watermark and
the inclusion–exclusion expansion in :func:`incremental_specs` rescans
every old×new cross term.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Tuple

from ..query.aggregates import GroupedAggregates
from ..query.executor import ComboSpec, RowRange
from ..storage.partition import Partition


@dataclass
class DeltaMemo:
    """One immutable snapshot of reusable delta-compensation state."""

    #: Compensation aggregate of all evaluated subjoins at ``anchor``,
    #: covering rows ``[0, watermark)`` of every recorded partition.
    #: Never mutated after install — concurrent readers merge from it.
    folded: GroupedAggregates
    #: The snapshot tid the memo is anchored at.
    anchor: int
    #: Smallest stamp > anchor in any covered prefix (inf = none): the memo
    #: serves readers in ``[anchor, horizon)`` only.
    horizon: float
    #: id(partition) -> physical row_count at memo time.
    watermarks: Dict[int, int]
    #: id(partition) -> invalidation_epoch at memo time.
    epochs: Dict[int, int]
    #: id(partition) -> the partition object itself.  Holds strong
    #: references so the ids above cannot be recycled, and lets validation
    #: compare object identity against the current plan's partitions.
    partitions: Dict[int, Partition]
    #: The plan signature active when the memo was taken; equal signatures
    #: mean no referenced table changed at all (per-table version counters),
    #: so validation can skip the per-partition walk.
    signature: Tuple = ()
    #: The star-join exclusion decision — ``(alias, reason)`` per excluded
    #: table — of the plan whose combo set ``folded`` was folded over.  A
    #: memo is only ever replayed for a plan with the *same* decision:
    #: toggling the override, flipping the config switch, or a dimension
    #: delta going empty→non-empty all change the fingerprint and route
    #: :func:`classify_memo` to a rebuild.  (A reduced-set memo does not
    #: cover the excluded tables' delta partitions, so growth there would
    #: otherwise be invisible to the watermark walk.)
    excluded: Tuple[Tuple[str, str], ...] = ()

    def covers(self, partition: Partition) -> bool:
        """True when ``partition`` (by identity) is recorded in this memo."""
        return self.partitions.get(id(partition)) is partition

    def rows_below_watermarks(self) -> int:
        """Total covered prefix rows — the scan work a reuse avoids."""
        return sum(self.watermarks.values())


def plan_partitions(subjoins) -> Dict[int, Partition]:
    """Every distinct partition referenced by the given planned subjoins
    (pruned and evaluated alike), keyed by object id."""
    out: Dict[int, Partition] = {}
    for sub in subjoins:
        for partition in sub.partitions.values():
            out[id(partition)] = partition
    return out


def build_memo(
    folded: GroupedAggregates,
    snapshot: int,
    partitions: Dict[int, Partition],
    signature: Tuple = (),
    excluded: Tuple[Tuple[str, str], ...] = (),
) -> DeltaMemo:
    """Record a freshly computed full compensation value as a memo."""
    watermarks: Dict[int, int] = {}
    epochs: Dict[int, int] = {}
    horizon = float("inf")
    for pid, partition in partitions.items():
        count = partition.row_count
        watermarks[pid] = count
        epochs[pid] = partition.invalidation_epoch
        horizon = min(horizon, partition.min_stamp_after(snapshot, 0, count))
    return DeltaMemo(
        folded=folded,
        anchor=snapshot,
        horizon=horizon,
        watermarks=watermarks,
        epochs=epochs,
        partitions=dict(partitions),
        signature=signature,
        excluded=excluded,
    )


def classify_memo(
    memo: Optional[DeltaMemo],
    snapshot: int,
    current: Dict[int, Partition],
    signature: Tuple = (),
    excluded: Tuple[Tuple[str, str], ...] = (),
) -> str:
    """Decide how a query at ``snapshot`` may use ``memo``.

    Returns ``"incremental"`` (reuse + advance), ``"older_reader"``
    (``snapshot`` predates the anchor: bypass, keep the memo for newer
    readers), or ``"rebuild"`` (no memo / exclusion decision changed /
    epochs moved / partition set changed / horizon crossed: recompute
    from scratch).

    ``excluded`` is the current plan's star-join exclusion fingerprint.
    A memo folded over one combo set is never replayed for a plan with a
    different one — even when the partition walk would pass (e.g. a plan
    built under a different strategy or override whose reduced partition
    set happens to coincide), because the watermarks only cover the
    memo's own combo set.
    """
    if memo is None:
        return "rebuild"
    if excluded != memo.excluded:
        return "rebuild"
    if snapshot < memo.anchor:
        return "older_reader"
    if not (snapshot < memo.horizon):
        return "rebuild"
    if signature and signature == memo.signature:
        # Per-table version counters unchanged: no append, no invalidation,
        # no partition swap since the memo — skip the per-partition walk.
        return "incremental"
    if len(current) != len(memo.partitions):
        return "rebuild"
    for pid, partition in current.items():
        if memo.partitions.get(pid) is not partition:
            return "rebuild"
        if partition.invalidation_epoch != memo.epochs[pid]:
            return "rebuild"
    return "incremental"


def incremental_specs(
    subjoins,
    watermarks: Dict[int, int],
) -> Tuple[List[ComboSpec], Dict[int, int], int]:
    """Expand the evaluated subjoins into delta-restricted combo specs.

    For each evaluated subjoin whose partitions grew past their watermarks,
    the contribution of the new rows is the inclusion–exclusion expansion
    over the grown aliases: with old region ``O_a = [0, W_a)`` and new
    region ``N_a = [W_a, rc_a)``,

        join(full) - join(old) = Σ_{∅ ≠ T ⊆ grown} join(a∈T: N_a, a∉T: O_a)

    — every term pins at least one alias to its new rows, so no old×old
    work is repeated.  Aliases whose partition did not grow keep their
    plain snapshot scan (their full extent is the old region).

    Returns ``(specs, spec_counts, rows_saved)``: the executor-ready
    specs in deterministic order (subjoin order, then subsets by size then
    alias tuple), a map of subjoin index → number of specs it expanded to
    (``2^k - 1`` for ``k`` grown aliases; 0 = fully memoized), and the
    number of already-covered prefix rows whose rescan the expansion
    avoided (the sum of watermarks of each evaluated subjoin's partitions —
    an approximation of the full-mode scan volume, which full mode would
    partially share across subjoins via scan memos).
    """
    specs: List[ComboSpec] = []
    spec_counts: Dict[int, int] = {}
    rows_saved = 0
    for index, sub in enumerate(subjoins):
        if sub.action != "evaluate":
            continue
        grown = sorted(
            alias
            for alias, partition in sub.partitions.items()
            if partition.row_count > watermarks.get(id(partition), 0)
        )
        rows_saved += sum(
            watermarks.get(id(p), 0) for p in sub.partitions.values()
        )
        spec_counts[index] = (1 << len(grown)) - 1
        if not grown:
            continue
        for size in range(1, len(grown) + 1):
            for subset in combinations(grown, size):
                chosen = set(subset)
                fixed: Dict[str, RowRange] = {}
                for alias in grown:
                    partition = sub.partitions[alias]
                    low = watermarks.get(id(partition), 0)
                    if alias in chosen:
                        fixed[alias] = RowRange(low, partition.row_count)
                    else:
                        fixed[alias] = RowRange(0, low)
                specs.append(
                    ComboSpec(
                        dict(sub.partitions),
                        extra_filters={
                            a: list(f) for a, f in sub.pushdown.items()
                        },
                        fixed_rows=fixed,
                    )
                )
    return specs, spec_counts, rows_saved


def advance_memo(
    memo: DeltaMemo,
    snapshot: int,
    increment: Optional[GroupedAggregates],
    signature: Tuple = (),
) -> DeltaMemo:
    """The memo re-anchored at ``snapshot`` with ``increment`` folded in.

    The exclusion fingerprint carries over unchanged —
    :func:`classify_memo` already required it to match the plan's.

    Only valid after :func:`classify_memo` returned ``"incremental"`` for
    ``snapshot``: the old prefixes then contribute identically at the new
    anchor, so the new horizon is the minimum of the old one and the
    smallest future stamp in the newly covered regions.  Watermarks advance
    to the current row counts of *all* recorded partitions — sound for
    partitions whose subjoins are currently pruned because the prune
    verdict covers their full physical extent (see module docstring).
    """
    if increment is not None:
        folded = memo.folded.copy()
        folded.merge(increment)
    else:
        folded = memo.folded
    watermarks: Dict[int, int] = {}
    epochs: Dict[int, int] = {}
    horizon = memo.horizon
    for pid, partition in memo.partitions.items():
        count = partition.row_count
        old = memo.watermarks[pid]
        if count > old:
            horizon = min(
                horizon, partition.min_stamp_after(snapshot, old, count)
            )
        watermarks[pid] = count
        epochs[pid] = partition.invalidation_epoch
    return DeltaMemo(
        folded=folded,
        anchor=snapshot,
        horizon=horizon,
        watermarks=watermarks,
        epochs=epochs,
        partitions=memo.partitions,
        signature=signature,
        excluded=memo.excluded,
    )
