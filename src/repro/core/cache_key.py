"""Aggregate-cache keys (Fig. 2: the "Aggregate Cache Key").

A key identifies one cached extent: the canonical query definition — table
names *and ids*, grouping attributes, aggregate functions, filter predicates
— plus the identity of the all-main partition combination the entry covers.
The combination matters under hot/cold multi-partitioning (Section 5.4),
where one query has several all-main combinations and therefore several
cache entries (one per temperature).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..query.query import AggregateQuery
from ..storage.catalog import Catalog
from ..storage.partition import Partition


@dataclass(frozen=True)
class CacheKey:
    """Hashable cache-entry identifier."""

    query_text: str
    table_ids: Tuple[Tuple[str, int], ...]
    combo: Tuple[Tuple[str, str], ...]  # (alias, partition name), sorted

    def __str__(self) -> str:
        combo = ", ".join(f"{alias}:{part}" for alias, part in self.combo)
        return f"{self.query_text} @ [{combo}]"


def cache_key_for(
    query: AggregateQuery,
    catalog: Catalog,
    main_combo: Dict[str, Partition],
) -> CacheKey:
    """Build the key of the entry caching ``main_combo`` for ``query``."""
    table_ids = tuple(
        sorted((ref.table, catalog.table(ref.table).table_id) for ref in query.tables)
    )
    combo = tuple(
        sorted((alias, partition.name) for alias, partition in main_combo.items())
    )
    return CacheKey(query.canonical_key(), table_ids, combo)
