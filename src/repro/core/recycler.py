"""Cross-query recycling of subjoin-level intermediates (Dursun et al.).

The aggregate cache memoizes *whole query results*; two overlapping queries —
same join core, different group-by or aggregate list — still recompute each
other's compensation subjoins from scratch.  "Revisiting Reuse in Main Memory
Database Systems" (PAPERS.md) closes exactly this gap with subplan-level
reuse, and this module is its adaptation to the main/delta compensation
model: a shared, thread-safe :class:`SubjoinRecycler` of *joined row-index
sets*, keyed by everything that determines a subjoin's output tuples and
nothing that doesn't.

What is stored
--------------
For each evaluated compensation subjoin, the post-residual
:class:`~repro.query.operators.JoinedProvider` state: the per-alias joined
index arrays (shared with the producing query, never mutated) plus the
partitions they index.  Group-by and aggregates are deliberately **not**
part of the key — on a hit, the consumer re-aggregates the recycled tuples
into its own grouped state, so a Q3-shaped and a Q5-shaped query over the
same customer/orders/orderline core share one join evaluation.

Key and validity model
----------------------
The key is ``(join-core fingerprint, plan signature, kernel tag, per-alias
partition/pushdown/fixed-rows state)``:

* **join-core fingerprint** — FROM list in declaration order, join edges and
  WHERE filters in list order (:func:`join_core_fingerprint`).  Declaration
  order is part of the fingerprint because
  :func:`~repro.plan.cost.choose_join_order` tie-breaks on it: two queries
  share a fingerprint only if they provably produce the same join order,
  scan the same rows, and therefore emit bit-identical tuple orderings —
  the property the executor's serial/parallel parity guarantee rests on.
* **plan signature** — the per-table version counters.  DML bumps them, so
  entries never outlive a write's partition set; together with the engine's
  writer-preferring lock (no DML *during* a query) this makes watermark /
  epoch revalidation at lookup time unnecessary.
* **kernel tag** — ``join_kernel()``, mirroring the executor's hash-memo
  keying: never serve one kernel tuples the other joined.
* **snapshot horizon** — stored per entry, not in the key: an entry built at
  snapshot ``anchor`` additionally knows the smallest stamp *above* the
  anchor over its partitions (``min_stamp_after``), i.e. the first write —
  committed or not — its scans did not observe.  A reader at snapshot ``s``
  may reuse the entry iff ``anchor <= s < horizon``; an uncommitted
  transaction's rows sit below the current signature but above the horizon,
  so a later reader that would see them correctly *misses* (outcome
  ``stale``) instead of replaying a too-old scan.

Concurrency
-----------
The recycler has its own lock (parallel subjoin workers probe and populate
concurrently, from multiple queries at once); the manager's lock is never
taken while holding it.  Per-query outcome counts live on the
:class:`RecycleContext` handed to the executor, so reports and metrics get
per-query routing without extra synchronization on the hot path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from ..query.executor import ComboSpec, RowRange
from ..query.query import AggregateQuery

__all__ = [
    "SubjoinRecycler",
    "RecycleContext",
    "RecycledSubjoin",
    "join_core_fingerprint",
]

#: Flat per-entry overhead estimate (key tuples, dict slots, dataclass).
_ENTRY_OVERHEAD_BYTES = 512


def join_core_fingerprint(query: AggregateQuery) -> Tuple:
    """The join-core identity of a query: FROM (in declaration order), join
    edges and filters (in list order) — everything that determines which
    tuples a subjoin joins and in what order, excluding group-by,
    aggregates, ORDER BY, and LIMIT (which only shape the aggregation on
    top).  Queries sharing a fingerprint can recycle each other's subjoins
    bit-identically."""
    return (
        tuple((ref.table, ref.alias) for ref in query.tables),
        tuple(edge.canonical() for edge in query.join_edges),
        tuple(expr.canonical() for expr in query.filters),
    )


@dataclass
class RecycledSubjoin:
    """One recycled subjoin: the joined index state plus its validity window.

    ``indices`` is ``None`` for a subjoin that evaluated empty — the cheapest
    possible hit: the consumer skips the join *and* the aggregation.  The
    arrays are shared with the producing query's provider and are treated as
    immutable by every consumer (``JoinedProvider`` never mutates its
    indices; ``select`` copies).
    """

    indices: Optional[Dict[str, np.ndarray]]
    partitions: Dict[str, object]
    row_counts: Dict[str, int]
    probe_side: str
    anchor: int
    horizon: float
    nbytes: int
    tables: FrozenSet[str]
    hits: int = 0


class RecycleContext:
    """Per-query recycling handle: fingerprint + signature + snapshot bound
    once at routing time, plus per-query outcome counts for the report.

    Thread-safe by construction: ``lookup``/``store`` funnel through the
    recycler's lock, and the per-partition horizon memo uses GIL-atomic
    dict operations (a racing duplicate computation is benign — both
    threads compute the same value for the same snapshot)."""

    __slots__ = (
        "recycler",
        "query_fp",
        "signature",
        "snapshot",
        "hits",
        "misses",
        "stale",
        "stored",
        "bypass",
        "_horizons",
    )

    def __init__(self, recycler: "SubjoinRecycler", query_fp, signature, snapshot: int):
        self.recycler = recycler
        self.query_fp = query_fp
        self.signature = signature
        self.snapshot = snapshot
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.stored = 0
        self.bypass = 0
        self._horizons: Dict[int, float] = {}

    # -- key construction ------------------------------------------------
    def key_for(self, combo: ComboSpec):
        """The recycler key of one subjoin, or ``None`` when the subjoin is
        not stably keyable (explicit ``fixed_rows`` index arrays — main
        compensation's invalidated-row sets — key by array identity in the
        executor's memo and cannot be recognized across queries)."""
        parts = []
        for alias in sorted(combo.partitions):
            fixed = combo.fixed_rows.get(alias)
            if fixed is None:
                fixed_key = None
            elif isinstance(fixed, RowRange):
                fixed_key = (fixed.start, fixed.stop)
            else:
                self.bypass += 1
                return None
            extra = combo.extra_filters.get(alias, ())
            parts.append(
                (
                    alias,
                    id(combo.partitions[alias]),
                    tuple(sorted(e.canonical() for e in extra)),
                    fixed_key,
                )
            )
        return (self.query_fp, self.signature, _kernel_tag(), tuple(parts))

    # -- validity --------------------------------------------------------
    def _horizon(self, partition) -> float:
        """First stamp above this context's snapshot in ``partition`` (inf
        when none) — memoized per partition, shared across this query's
        subjoins so the O(rows) stamp scan runs once per partition."""
        pid = id(partition)
        horizon = self._horizons.get(pid)
        if horizon is None:
            horizon = partition.min_stamp_after(
                self.snapshot, 0, partition.row_count
            )
            self._horizons[pid] = horizon
        return horizon

    # -- probe / populate ------------------------------------------------
    def lookup(self, key, combo: ComboSpec) -> Optional[RecycledSubjoin]:
        """Probe the shared recycler; validates partition identity and the
        snapshot window, counts the outcome on this context."""
        entry, outcome = self.recycler._lookup(key, combo, self.snapshot)
        if outcome == "hit":
            self.hits += 1
        elif outcome == "stale":
            self.stale += 1
        else:
            self.misses += 1
        return entry

    def store(self, key, combo: ComboSpec, provider, row_counts, probe_side) -> None:
        """Publish one evaluated subjoin (``provider is None`` = empty)."""
        horizon = min(self._horizon(p) for p in combo.partitions.values())
        if horizon <= self.snapshot:  # pragma: no cover - defensive
            return
        if provider is None:
            indices = None
            partitions = dict(combo.partitions)
            nbytes = _ENTRY_OVERHEAD_BYTES
        else:
            indices = dict(provider.indices)
            partitions = dict(provider.partitions)
            nbytes = _ENTRY_OVERHEAD_BYTES + sum(
                arr.nbytes for arr in indices.values()
            )
        entry = RecycledSubjoin(
            indices=indices,
            partitions=partitions,
            row_counts=dict(row_counts),
            probe_side=probe_side,
            anchor=self.snapshot,
            horizon=horizon,
            nbytes=nbytes,
            tables=frozenset(table for table, _alias in self.query_fp[0]),
        )
        if self.recycler._store(key, entry):
            self.stored += 1


def _kernel_tag() -> str:
    from ..query.operators import join_kernel

    return join_kernel()


class SubjoinRecycler:
    """Shared LRU store of recycled subjoins with a byte budget.

    Owned by the cache manager; contexts are minted per routed query.  All
    mutation happens under ``_lock``; the manager's lock may be held while
    calling in (manager → recycler is the only permitted lock order)."""

    def __init__(self, max_bytes: int = 32 * 1024 * 1024, obs=None):
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, RecycledSubjoin]" = OrderedDict()
        self._nbytes = 0
        self.max_bytes = max_bytes
        self._obs = obs
        # Lifetime counters (guarded by _lock; snapshot via stats()).
        self.total_hits = 0
        self.total_misses = 0
        self.total_stale = 0
        self.total_stored = 0
        self.total_evictions = 0
        self.total_invalidated = 0

    # -- context minting -------------------------------------------------
    def context(self, query_fp, signature, snapshot: int) -> RecycleContext:
        """A per-query probe/populate handle bound to one routing decision."""
        return RecycleContext(self, query_fp, signature, snapshot)

    # -- core operations (context-driven) --------------------------------
    def _lookup(self, key, combo: ComboSpec, snapshot: int):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.total_misses += 1
                return None, "miss"
            valid = entry.anchor <= snapshot < entry.horizon and all(
                entry.partitions.get(alias) is partition
                for alias, partition in combo.partitions.items()
            )
            if not valid:
                # A stale entry can never become valid again (signatures
                # only move forward); drop it on sight.
                self._drop_locked(key, entry)
                self.total_stale += 1
                self.total_invalidated += 1
                self._note_eviction("stale")
                return None, "stale"
            self._entries.move_to_end(key)
            entry.hits += 1
            self.total_hits += 1
            return entry, "hit"

    def _store(self, key, entry: RecycledSubjoin) -> bool:
        if entry.nbytes > self.max_bytes:
            return False  # would evict the entire store for one entry
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                if existing.anchor >= entry.anchor:
                    return False  # a newer (or same) anchor already won
                self._drop_locked(key, existing)
            self._entries[key] = entry
            self._nbytes += entry.nbytes
            self.total_stored += 1
            while self._nbytes > self.max_bytes and len(self._entries) > 1:
                old_key, old = next(iter(self._entries.items()))
                if old_key == key:
                    break
                self._drop_locked(old_key, old)
                self.total_evictions += 1
                self._note_eviction("budget")
            return True

    def _drop_locked(self, key, entry: RecycledSubjoin) -> None:
        del self._entries[key]
        self._nbytes -= entry.nbytes

    def _note_eviction(self, reason: str) -> None:
        if self._obs is not None:
            self._obs.recycler_evictions.labels(reason).inc()

    # -- lifecycle -------------------------------------------------------
    def evict_for_table(self, table_name: str) -> int:
        """Drop every entry whose join core references ``table_name`` —
        called on DROP TABLE and after a delta merge swaps partitions."""
        with self._lock:
            doomed = [
                (key, entry)
                for key, entry in self._entries.items()
                if table_name in entry.tables
            ]
            for key, entry in doomed:
                self._drop_locked(key, entry)
            self.total_invalidated += len(doomed)
        for _ in doomed:
            self._note_eviction("invalidated")
        return len(doomed)

    def clear(self) -> Tuple[int, int]:
        """Drop everything; returns ``(entries_dropped, bytes_freed)`` for
        the governor's shed accounting."""
        with self._lock:
            count, freed = len(self._entries), self._nbytes
            self._entries.clear()
            self._nbytes = 0
            self.total_evictions += count
        if count and self._obs is not None:
            self._obs.recycler_evictions.labels("shed").inc(count)
        return count, freed

    # -- introspection ---------------------------------------------------
    def nbytes(self) -> int:
        with self._lock:
            return self._nbytes

    def entry_count(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """One locked snapshot of occupancy + lifetime counters."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._nbytes,
                "max_bytes": self.max_bytes,
                "hits": self.total_hits,
                "misses": self.total_misses,
                "stale": self.total_stale,
                "stored": self.total_stored,
                "evictions": self.total_evictions,
                "invalidated": self.total_invalidated,
            }
