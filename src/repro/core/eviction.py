"""Cache eviction policies.

The manager calls the eviction policy after every admission; the policy
returns the keys to drop so the cache fits its configured budget
(``max_entries`` and/or ``max_bytes``).  Two classic policies are provided:
least-recently-used and lowest-profit-first (the dynamic decision metric of
Section 2.1 / [20]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol

from .cache_entry import AggregateCacheEntry
from .cache_key import CacheKey


class EvictionPolicy(Protocol):
    """Selects victims when the cache exceeds its budget."""

    def select_victims(
        self,
        entries: Dict[CacheKey, AggregateCacheEntry],
        max_entries: Optional[int],
        max_bytes: Optional[int],
    ) -> List[CacheKey]:
        """Keys to drop so the cache fits its budget (empty if within)."""
        ...


def _over_budget(
    entries: Dict[CacheKey, AggregateCacheEntry],
    max_entries: Optional[int],
    max_bytes: Optional[int],
) -> bool:
    if max_entries is not None and len(entries) > max_entries:
        return True
    if max_bytes is not None:
        total = sum(e.metrics.size_bytes for e in entries.values())
        if total > max_bytes:
            return True
    return False


@dataclass
class LruEviction:
    """Evict the least recently used entries first."""

    def select_victims(
        self,
        entries: Dict[CacheKey, AggregateCacheEntry],
        max_entries: Optional[int],
        max_bytes: Optional[int],
    ) -> List[CacheKey]:
        """Oldest-access-first victims until within budget."""
        return _evict_in_order(
            entries,
            max_entries,
            max_bytes,
            key_fn=lambda e: e.metrics.last_access_clock,
        )


@dataclass
class ProfitEviction:
    """Evict the lowest-profit entries first (ties broken by recency)."""

    def select_victims(
        self,
        entries: Dict[CacheKey, AggregateCacheEntry],
        max_entries: Optional[int],
        max_bytes: Optional[int],
    ) -> List[CacheKey]:
        """Lowest-profit-first victims until within budget."""
        return _evict_in_order(
            entries,
            max_entries,
            max_bytes,
            key_fn=lambda e: (e.metrics.profit(), e.metrics.last_access_clock),
        )


def _evict_in_order(
    entries: Dict[CacheKey, AggregateCacheEntry],
    max_entries: Optional[int],
    max_bytes: Optional[int],
    key_fn,
) -> List[CacheKey]:
    if not _over_budget(entries, max_entries, max_bytes):
        return []
    ordered = sorted(entries.items(), key=lambda kv: key_fn(kv[1]))
    remaining = dict(entries)
    victims: List[CacheKey] = []
    for key, _entry in ordered:
        if not _over_budget(remaining, max_entries, max_bytes):
            break
        del remaining[key]
        victims.append(key)
    return victims
