"""Per-entry aggregate cache metrics (Fig. 2: "Aggregate Cache Metrics").

The metrics mirror the fields the paper lists — the aggregate's size, the
number of aggregated records in main and delta, execution times for main and
delta compensation, maintenance times, and usage information — and feed the
profit estimate used for admission, eviction, and maintenance decisions
(Mueller et al. [20], cited in Section 2.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class EntryStatus(enum.Enum):
    """Lifecycle state of a cache entry."""

    ACTIVE = "active"
    INVALIDATED = "invalidated"  # dropped at merge (MaintenanceMode.DROP)


@dataclass
class CacheMetrics:
    """Mutable per-entry statistics.

    Times are seconds of wall clock.  ``logical_clock`` orders accesses for
    LRU eviction without depending on the system clock (the engine passes a
    monotonically increasing access counter).
    """

    status: EntryStatus = EntryStatus.ACTIVE
    size_bytes: int = 0
    aggregated_records_main: int = 0
    aggregated_records_delta: int = 0
    creation_time_main: float = 0.0  # seconds to compute the main aggregate
    compensation_time_delta: float = 0.0  # cumulative delta-compensation time
    compensation_time_main: float = 0.0  # cumulative main-compensation time
    maintenance_time: float = 0.0  # cumulative merge-maintenance time
    reference_count: int = 0
    last_access_clock: int = 0
    dirty_counter: int = 0  # main-partition invalidations seen since creation

    # ------------------------------------------------------------------
    def record_use(self, clock: int) -> None:
        """Count one use and refresh the LRU clock."""
        self.reference_count += 1
        self.last_access_clock = clock

    def average_delta_compensation(self) -> float:
        """Mean delta-compensation seconds per use (0 before any use)."""
        if self.reference_count == 0:
            return 0.0
        return self.compensation_time_delta / self.reference_count

    def profit(self) -> float:
        """Estimated benefit of keeping this entry.

        The entry saves roughly ``creation_time_main`` per use (that is what
        on-the-fly aggregation of the main would cost) and costs the average
        delta/main compensation per use plus its share of maintenance.  The
        estimate is normalized per byte so eviction favours small, hot,
        expensive-to-rebuild aggregates — the shape of the profit metric in
        [20].
        """
        uses = max(1, self.reference_count)
        saved = self.creation_time_main * uses
        cost = (
            self.compensation_time_delta
            + self.compensation_time_main
            + self.maintenance_time
        )
        return (saved - cost) / max(1, self.size_bytes)
