"""The paper's contribution: the aggregate cache and object-aware joins."""

from .admission import AdmissionPolicy, AdmissionRequest, AlwaysAdmit, ProfitAdmission
from .cache_entry import AggregateCacheEntry
from .cache_key import CacheKey, cache_key_for
from .delta_compensation import build_compensation_combos, compensation_assignments
from .enforcement import EnforcementStats, MDEnforcer
from .eviction import EvictionPolicy, LruEviction, ProfitEviction
from .explain import QueryPlan, SubjoinPlan, explain_query
from .main_compensation import StaleEntryError, apply_main_compensation
from .manager import AggregateCacheManager, CacheQueryReport
from .matching_dependency import MatchingDependency, validate_md
from .merge_advisor import MergeAdvisor, MergeRecommendation
from .metrics import CacheMetrics, EntryStatus
from .pruning import JoinPruner, PruneReport, partition_temperature
from .strategies import CacheConfig, ExecutionStrategy, MaintenanceMode

__all__ = [
    "AdmissionPolicy",
    "AdmissionRequest",
    "AggregateCacheEntry",
    "AggregateCacheManager",
    "AlwaysAdmit",
    "CacheConfig",
    "CacheKey",
    "CacheMetrics",
    "CacheQueryReport",
    "EnforcementStats",
    "EntryStatus",
    "EvictionPolicy",
    "ExecutionStrategy",
    "JoinPruner",
    "LruEviction",
    "MDEnforcer",
    "MaintenanceMode",
    "MatchingDependency",
    "MergeAdvisor",
    "MergeRecommendation",
    "ProfitAdmission",
    "ProfitEviction",
    "PruneReport",
    "QueryPlan",
    "SubjoinPlan",
    "StaleEntryError",
    "apply_main_compensation",
    "build_compensation_combos",
    "cache_key_for",
    "compensation_assignments",
    "explain_query",
    "partition_temperature",
    "validate_md",
]
