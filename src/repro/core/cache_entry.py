"""Aggregate cache entries (Fig. 2).

An entry binds a :class:`CacheKey` to

* the **value**: the grouped aggregate computed over *one all-main partition
  combination only* (never the deltas — that is the whole point of the
  design: inserts go to the delta and cannot invalidate the entry);
* the **visibility snapshot**: one bit vector per referenced main partition,
  captured at creation time through the consistent view manager, which main
  compensation diffs against the current visibility to find invalidated
  records (Section 2.2);
* the **metrics** used for admission/eviction/maintenance decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import CacheError
from ..query.aggregates import GroupedAggregates
from ..storage.bitvector import BitVector
from ..storage.partition import Partition
from .cache_key import CacheKey
from .metrics import CacheMetrics, EntryStatus


@dataclass
class AggregateCacheEntry:
    """One cached aggregate extent."""

    key: CacheKey
    query: "object"  # the bound AggregateQuery this entry caches
    value: GroupedAggregates
    # alias -> the table owning each referenced main partition
    tables: Dict[str, "object"]
    # alias -> the main partition the entry is defined on
    main_partitions: Dict[str, Partition]
    # alias -> visibility of that main partition at creation/maintenance time
    visibility: Dict[str, BitVector]
    snapshot: int  # transaction id the visibility was captured at
    # alias -> partition.invalidation_epoch at snapshot time (O(1) clean check)
    invalidation_epochs: Dict[str, int] = field(default_factory=dict)
    metrics: CacheMetrics = field(default_factory=CacheMetrics)
    # The entry's delta-compensation memo (repro.core.delta_memo.DeltaMemo),
    # or None.  Memo objects are immutable; the manager swaps them
    # compare-and-set style under its lock, and any lifecycle event that
    # re-anchors the entry (merge maintenance via rebase) resets it.
    delta_memo: "object" = None

    def __post_init__(self):
        missing = set(self.main_partitions) ^ set(self.visibility)
        if missing:
            raise CacheError(
                f"entry visibility does not cover aliases {sorted(missing)}"
            )
        for alias, partition in self.main_partitions.items():
            if len(self.visibility[alias]) != partition.row_count:
                raise CacheError(
                    f"visibility length mismatch for alias {alias!r}: "
                    f"{len(self.visibility[alias])} != {partition.row_count}"
                )
            self.invalidation_epochs.setdefault(alias, partition.invalidation_epoch)

    def is_clean_for(self, snapshot: int) -> bool:
        """O(1) check that main compensation would be a no-op: nothing was
        invalidated in any referenced main since the entry's snapshot, and
        the reader is not older than the entry (an older reader must not see
        rows that were folded in by a later merge)."""
        if snapshot < self.snapshot:
            return False
        return all(
            partition.invalidation_epoch == self.invalidation_epochs[alias]
            for alias, partition in self.main_partitions.items()
        )

    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        """False once invalidated (DROP-mode maintenance)."""
        return self.metrics.status is EntryStatus.ACTIVE

    def invalidate(self) -> None:
        """Mark the entry invalidated; the next lookup replaces it."""
        self.metrics.status = EntryStatus.INVALIDATED

    def matches_current_partitions(self) -> bool:
        """False once a referenced main partition was rebuilt (delta merge)
        without this entry being maintained — the entry is then stale and
        must be recomputed rather than compensated.

        Checks both object identity (the table may have swapped in a rebuilt
        partition under the same name) and snapshot length.
        """
        for alias, partition in self.main_partitions.items():
            live = self.tables[alias].partition(partition.name)
            if live is not partition:
                return False
            if len(self.visibility[alias]) != partition.row_count:
                return False
        return True

    def rebase(
        self,
        alias: str,
        new_partition: Partition,
        new_visibility: BitVector,
        new_value: GroupedAggregates,
        snapshot: int,
    ) -> None:
        """Re-anchor one alias after its main partition was rebuilt by a
        merge and the value was incrementally maintained (Section 5.2)."""
        if alias not in self.main_partitions:
            raise CacheError(f"entry does not reference alias {alias!r}")
        if len(new_visibility) != new_partition.row_count:
            raise CacheError("rebase visibility length mismatch")
        self.main_partitions[alias] = new_partition
        self.visibility[alias] = new_visibility
        self.invalidation_epochs[alias] = new_partition.invalidation_epoch
        self.value = new_value
        self.snapshot = snapshot
        self.metrics.size_bytes = new_value.approximate_nbytes()
        self.metrics.aggregated_records_main = new_value.total_rows_aggregated()
        self.metrics.dirty_counter = 0
        # The merge rebuilt at least one referenced partition, so the memo's
        # watermarks and identity set no longer describe the live layout.
        self.delta_memo = None

    def __repr__(self) -> str:
        return (
            f"AggregateCacheEntry(key={self.key.combo}, "
            f"groups={self.value.group_count()}, status={self.metrics.status.value})"
        )
