"""Matching dependencies (Section 4.1 / Section 5).

A matching dependency (MD) between a parent table ``R`` and a child table
``S`` states (Definition 2, Equation 3/6):

    for all r in R, s in S:  r[A] = s[A]  =>  r[tid] = s[tid]

where ``A`` is the join attribute (``R``'s primary key matched by ``S``'s
foreign key) and ``tid`` is a temporal attribute: the auto-incremented
transaction id of the transaction that inserted ``r``, copied into ``s`` at
``s``'s insert time.  The MD itself is a hard constraint (it is enforced on
every insert); the *temporal locality* of enterprise objects — header and
items inserted in the same or nearby transactions — is the soft constraint
that makes the resulting tid ranges prunable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SchemaError
from ..storage.catalog import Catalog
from ..storage.schema import tid_column


@dataclass(frozen=True)
class MatchingDependency:
    """Declaration of one MD between a parent and a child table.

    Attributes
    ----------
    parent_table / parent_key:
        ``R`` and its unique join attribute ``A`` (must be ``R``'s primary
        key, which is what makes the insert-time lookup single-valued).
    child_table / child_fk:
        ``S`` and its foreign-key attribute referencing ``R[A]``.
    tid_column:
        Name of the temporal column present on *both* tables, e.g.
        ``tid_header``.  On the parent it is stamped with the inserting
        transaction's id; on the child it is copied from the matching
        parent row.
    """

    parent_table: str
    parent_key: str
    child_table: str
    child_fk: str
    tid_column: str

    def __post_init__(self):
        if self.parent_table == self.child_table:
            raise SchemaError("self-referencing matching dependencies are not supported")

    def canonical(self) -> str:
        """Stable textual form of the MD declaration."""
        return (
            f"MD({self.parent_table}[{self.parent_key}] = "
            f"{self.child_table}[{self.child_fk}] => "
            f"{self.parent_table}[{self.tid_column}] = "
            f"{self.child_table}[{self.tid_column}])"
        )

    def covers_join(
        self,
        table_a: str,
        col_a: str,
        table_b: str,
        col_b: str,
    ) -> bool:
        """True if this MD covers the equi-join ``table_a.col_a = table_b.col_b``."""
        forward = (
            table_a == self.parent_table
            and col_a == self.parent_key
            and table_b == self.child_table
            and col_b == self.child_fk
        )
        backward = (
            table_b == self.parent_table
            and col_b == self.parent_key
            and table_a == self.child_table
            and col_a == self.child_fk
        )
        return forward or backward


def validate_md(md: MatchingDependency, catalog: Catalog) -> None:
    """Check that the MD's tables, keys, and tid columns exist.

    The tid column must exist on both sides (use ``install_md_columns`` to
    add them) and the parent key must be the parent's primary key so the
    enforcement lookup is unique (Section 5: "at most one matching tuple
    exists, e.g. R[A] is the primary key of R").
    """
    parent = catalog.table(md.parent_table)
    child = catalog.table(md.child_table)
    if parent.schema.primary_key != md.parent_key:
        raise SchemaError(
            f"MD parent key {md.parent_key!r} must be the primary key of "
            f"{md.parent_table!r} (which is {parent.schema.primary_key!r})"
        )
    if not child.schema.has_column(md.child_fk):
        raise SchemaError(
            f"MD child fk {md.child_fk!r} missing from {md.child_table!r}"
        )
    for table in (parent, child):
        if not table.schema.has_column(md.tid_column):
            raise SchemaError(
                f"tid column {md.tid_column!r} missing from {table.name!r}; "
                "declare it with storage.tid_column() or let the Database "
                "facade install it"
            )


def md_columns_for(
    md: MatchingDependency, table_name: str
) -> Optional[object]:
    """The tid ``ColumnDef`` this MD needs on the given table, or None."""
    if table_name in (md.parent_table, md.child_table):
        return tid_column(md.tid_column)
    return None
