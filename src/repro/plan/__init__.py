"""The unified planner layer: one logical→physical pipeline, cached.

Planning is a first-class artifact here instead of being re-derived (and
thrown away) by the executor, the cache manager, and EXPLAIN separately:

* :class:`~repro.plan.logical.Binder` resolves a statement against the
  catalog once, producing a :class:`~repro.plan.logical.LogicalPlan`;
* :class:`~repro.plan.physical.Planner` lowers it to a
  :class:`~repro.plan.physical.PhysicalPlan` — every subjoin's partition
  assignment, prune verdict, pushdown filters, and cost-seeded join order;
* :class:`~repro.plan.cache.PlanCache` keys plans by (normalized
  statement, strategy) and validates them against per-table version
  counters, so repeated statements skip parse/bind/enumeration entirely.

``cost``, ``logical``, and ``star_join`` are imported eagerly (they
depend only on the query/storage layers); ``physical`` and ``cache``
import the executor in turn, so they are exposed lazily to keep the
import graph acyclic.
"""

from __future__ import annotations

from .cost import FILTER_SELECTIVITY, JoinStep, choose_join_order, estimate_scan_rows
from .logical import Binder, LogicalPlan
from .star_join import (
    ExcludedTable,
    alias_is_filtering,
    detect_star_join_tables,
    exclusion_is_sound,
    normalize_star_join_override,
)

__all__ = [
    "Binder",
    "LogicalPlan",
    "JoinStep",
    "FILTER_SELECTIVITY",
    "choose_join_order",
    "estimate_scan_rows",
    "ExcludedTable",
    "alias_is_filtering",
    "detect_star_join_tables",
    "exclusion_is_sound",
    "normalize_star_join_override",
    "Planner",
    "PhysicalPlan",
    "PlannedSubjoin",
    "plan_signature",
    "PlanCache",
]

_LAZY = {
    "Planner": "physical",
    "PhysicalPlan": "physical",
    "PlannedSubjoin": "physical",
    "plan_signature": "physical",
    "PlanCache": "cache",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
