"""The planner's cost model: join ordering and scan-size estimation.

The engine keeps exactly one join-ordering algorithm — a left-deep order
over the (connected) join graph, probing from the largest input and
hashing the smallest connectable candidate first.  The *planner* runs it
over **estimated** partition row counts (physical rows discounted by a
fixed per-filter selectivity) to expose the expected order in EXPLAIN;
the *executor* runs the same function over the **actual** scanned row
counts of each subjoin, so the runtime order adapts to visibility and
filters while remaining bit-identical between serial and parallel runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import QueryError
from ..query.query import AggregateQuery, JoinEdge

#: Fixed selectivity attributed to each local/pushdown filter conjunct when
#: estimating scan sizes at plan time.  Deliberately crude — the estimate
#: only seeds join ordering and EXPLAIN display, never correctness.
FILTER_SELECTIVITY = 0.5

#: Cost multiplier for scanning a memory-mapped cold partition relative to
#: a resident one: cold pages fault in from disk, so the ordering should
#: prefer building hash tables on (and probing from) hot inputs when row
#: counts are comparable.  The exact value only biases ordering — any
#: multiplier > 1 expresses "disk is slower than RAM".
COLD_SCAN_PENALTY = 4.0


def tier_cost_multiplier(partition) -> float:
    """Scan-cost weight of one partition: 1.0 resident, penalized mapped."""
    if getattr(partition, "storage_tier", "resident") == "mapped":
        return COLD_SCAN_PENALTY
    return 1.0


def tier_weighted_costs(
    row_counts: Dict[str, int], partitions: Dict[str, object]
) -> Dict[str, float]:
    """Per-alias scan costs: rows × tier multiplier.

    Feeding these (instead of raw rows) to :func:`choose_join_order`
    realizes the tier-aware ordering; when nothing is demoted every
    multiplier is 1.0 and the result is identical to using raw counts.
    """
    return {
        alias: row_counts[alias] * tier_cost_multiplier(partitions.get(alias))
        for alias in row_counts
    }


class JoinStep:
    """One step of the left-deep join plan: the alias to add and its edges."""

    __slots__ = ("alias", "edges")

    def __init__(self, alias: str, edges: List[JoinEdge]):
        self.alias = alias
        self.edges = edges


def choose_join_order(
    query: AggregateQuery,
    row_counts: Optional[Dict[str, int]] = None,
) -> Tuple[str, List[JoinStep]]:
    """Left-deep join order following the (connected) join graph.

    With ``row_counts`` (rows per alias — estimated at plan time, actual at
    run time) the probe side is seeded from the *largest* input and every
    joined alias — the side a hash table is built on — is picked
    smallest-first among the connectable candidates.  Without counts the
    FROM order is kept (the legacy plan; only used when inputs are unknown).
    """
    from_order = {ref.alias: i for i, ref in enumerate(query.tables)}
    remaining = [ref.alias for ref in query.tables]
    if row_counts is None:
        first = remaining.pop(0)
    else:
        # Probe the biggest side so hash tables are built on the small
        # ones; ties resolve in FROM order for determinism.
        first = max(remaining, key=lambda a: (row_counts[a], -from_order[a]))
        remaining.remove(first)
    joined = {first}
    steps: List[JoinStep] = []
    while remaining:
        candidates = []
        for alias in remaining:
            edges = [
                edge
                for edge in query.join_edges
                if alias in edge.aliases() and edge.other(alias)[0] in joined
            ]
            if edges:
                candidates.append((alias, edges))
        if not candidates:  # pragma: no cover - guarded by query validation
            raise QueryError(f"disconnected join graph at {remaining}")
        if row_counts is None:
            chosen = candidates
        else:
            candidates.sort(key=lambda c: (row_counts[c[0]], from_order[c[0]]))
            chosen = candidates[:1]
        for alias, edges in chosen:
            steps.append(JoinStep(alias, edges))
            joined.add(alias)
            remaining.remove(alias)
    return first, steps


def estimate_scan_rows(physical_rows: int, n_filters: int) -> int:
    """Expected rows surviving a scan with ``n_filters`` local conjuncts.

    ``ceil``-free on purpose: a partition with rows never estimates to zero
    (the floor is 1), so plan-time ordering cannot mistake a filtered
    partition for an empty one.
    """
    if physical_rows <= 0:
        return 0
    estimate = physical_rows * (FILTER_SELECTIVITY ** n_filters)
    return max(1, int(estimate))
