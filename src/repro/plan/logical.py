"""Binding: raw :class:`AggregateQuery` → :class:`LogicalPlan`.

The :class:`Binder` resolves every unqualified column reference against the
catalog, validates join edges and ORDER BY / HAVING output references, and
produces the *bound* query — the normalized statement every downstream
layer (planner, plan cache, executor, cache keys) agrees on.  Binding
happens once per statement; a bound query is marked with the catalog it was
bound against so re-binding is a no-op identity check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import QueryError
from ..query.expr import Col
from ..query.query import AggregateQuery, JoinEdge, TableRef
from ..storage.catalog import Catalog


@dataclass
class LogicalPlan:
    """The bound statement: query, join graph, and aggregate shape.

    Everything here is catalog-resolved but partition-agnostic — the
    physical layer (partition assignments, pruning, join order) is the
    :class:`~repro.plan.physical.Planner`'s job.
    """

    query: AggregateQuery  # bound: every Col carries its owning alias
    tables: List[TableRef] = field(default_factory=list)
    join_edges: List[JoinEdge] = field(default_factory=list)
    cacheable: bool = False  # every aggregate is self-maintainable

    @property
    def canonical_key(self) -> str:
        """The bound statement's stable textual identity."""
        return self.query.canonical_key()

    def table_names(self) -> List[str]:
        """Distinct referenced table names, sorted (plan-cache signatures)."""
        return sorted({ref.table for ref in self.tables})


class Binder:
    """Resolves and validates queries against one catalog."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    def bind(self, query: AggregateQuery) -> AggregateQuery:
        """Resolve unqualified column references and validate columns.

        Returns a new query in which every ``Col`` carries the alias of the
        unique table that owns the column; raises ``QueryError`` for unknown
        or ambiguous names — including ORDER BY and HAVING references, which
        address *output* columns (group labels and aggregate outputs).
        Binding is idempotent: a query produced by this method is returned
        unchanged, so hot paths may re-bind freely.
        """
        if getattr(query, "_bound_by", None) is self._catalog:
            return query
        schemas = {
            ref.alias: self._catalog.table(ref.table).schema for ref in query.tables
        }

        def resolve(col: Col) -> Col:
            if col.alias is not None:
                schema = schemas.get(col.alias)
                if schema is None:
                    raise QueryError(f"unknown alias {col.alias!r}")
                if not schema.has_column(col.name):
                    raise QueryError(
                        f"table alias {col.alias!r} has no column {col.name!r}"
                    )
                return col
            owners = [
                alias for alias, schema in schemas.items() if schema.has_column(col.name)
            ]
            if not owners:
                raise QueryError(f"unknown column {col.name!r}")
            if len(owners) > 1:
                raise QueryError(
                    f"ambiguous column {col.name!r} (owned by {sorted(owners)})"
                )
            return Col(col.name, owners[0])

        for edge in query.join_edges:
            for alias, col in (
                (edge.left_alias, edge.left_col),
                (edge.right_alias, edge.right_col),
            ):
                if not schemas[alias].has_column(col):
                    raise QueryError(
                        f"join edge references missing column {alias}.{col}"
                    )
        self._bind_output_refs(query)
        bound = AggregateQuery(
            tables=query.tables,
            aggregates=[
                spec if spec.arg is None else type(spec)(
                    spec.func, spec.arg.map_columns(resolve), spec.output,
                    spec.distinct,
                )
                for spec in query.aggregates
            ],
            group_by=[resolve(col) for col in query.group_by],
            join_edges=query.join_edges,
            filters=[f.map_columns(resolve) for f in query.filters],
            order_by=query.order_by,
            limit=query.limit,
            group_labels=query.group_labels,
            having=query.having,
        )
        bound._bound_by = self._catalog
        return bound

    def plan(self, query: AggregateQuery) -> LogicalPlan:
        """Bind and wrap the statement as a :class:`LogicalPlan`."""
        bound = self.bind(query)
        return LogicalPlan(
            query=bound,
            tables=list(bound.tables),
            join_edges=list(bound.join_edges),
            cacheable=bound.is_self_maintainable(),
        )

    @staticmethod
    def _bind_output_refs(query: AggregateQuery) -> None:
        """Validate ORDER BY / HAVING references against the output columns.

        Both clauses address result columns, so unlike ``filters`` they are
        never rewritten to table-qualified form — but an unknown name must
        fail *here*, at bind time, not deep in result rendering (or, for a
        cached query, silently late on some future execution path).
        """
        outputs = query.output_columns()
        counts: Dict[str, int] = {}
        for name in outputs:
            counts[name] = counts.get(name, 0) + 1

        def check(name: str, clause: str) -> None:
            n = counts.get(name, 0)
            if n == 0:
                raise QueryError(
                    f"{clause} references unknown output column {name!r} "
                    f"(available: {outputs})"
                )
            if n > 1:
                raise QueryError(
                    f"{clause} reference {name!r} is ambiguous: {n} output "
                    f"columns share that name"
                )

        for item in query.order_by:
            check(item.column, "ORDER BY")
        if query.having is not None:
            for alias, name in sorted(
                query.having.column_refs(), key=lambda ref: (ref[0] or "", ref[1])
            ):
                if alias is not None:
                    raise QueryError(
                        f"HAVING references {alias}.{name}; HAVING addresses "
                        f"output columns, which are unqualified"
                    )
                check(name, "HAVING")
