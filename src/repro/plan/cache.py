"""The versioned plan cache: normalized statement → :class:`PhysicalPlan`.

Plans are cached under two slots pointing at one entry:

* the **canonical slot** — ``(bound statement canonical key, strategy)`` —
  hits any equivalent statement however it was phrased;
* optional **alias slots** — ``(raw SQL text, strategy)`` — hit
  byte-identical statements *before* parse/bind, which is what removes the
  fixed parse/bind/enumeration cost from the repeated-query hot path.

Validity is an integer compare: every entry stores the
:func:`~repro.plan.physical.plan_signature` of its build moment, and a
lookup recomputes the current signature — table versions are bumped on
DML/merge/DDL, so a stale plan can never be served.  Stale entries are
dropped on discovery (outcome ``"invalidated"``); capacity is enforced by
LRU over entries (an entry and all its alias slots live and die together).

The cache is thread-safe: one lock guards the maps, and lookups never run
user code under it beyond the signature recompute (a few attribute reads).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from .physical import PhysicalPlan

#: A cache slot: ("canon"|"sql", statement text, strategy value,
#: normalized per-statement star_join_tables override or None) — the
#: override is part of the key because it changes the planned combo set.
PlanKey = Tuple[str, str, str, Optional[Tuple[str, ...]]]


class _Entry:
    __slots__ = ("plan", "signature", "alias_keys")

    def __init__(self, plan: PhysicalPlan, signature: Tuple, alias_keys: Tuple):
        self.plan = plan
        self.signature = signature
        self.alias_keys = alias_keys


class PlanCache:
    """Bounded, versioned, thread-safe cache of physical plans."""

    def __init__(self, capacity: int = 128):
        self._capacity = capacity
        self._lock = threading.Lock()
        # primary (canonical) key → entry, in LRU order (oldest first).
        self._entries: "OrderedDict[PlanKey, _Entry]" = OrderedDict()
        # alias (raw SQL) key → primary key.
        self._aliases: Dict[PlanKey, PlanKey] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        """False when constructed with capacity 0 (cache disabled)."""
        return self._capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def get(
        self, key: PlanKey, signer: Callable[[PhysicalPlan], Tuple]
    ) -> Tuple[Optional[PhysicalPlan], str]:
        """Look up a plan; returns ``(plan, outcome)``.

        ``signer`` recomputes the current signature of a candidate plan
        (catalog versions + config); a mismatch — or a signer exception,
        e.g. a referenced table was dropped — invalidates the entry in
        place.  Outcomes: ``"hit"``, ``"miss"``, ``"invalidated"``.
        """
        if not self.enabled:
            return None, "miss"
        with self._lock:
            primary = self._aliases.get(key, key)
            entry = self._entries.get(primary)
            if entry is None:
                self.misses += 1
                return None, "miss"
            try:
                current = signer(entry.plan)
            except Exception:
                current = None
            if current != entry.signature:
                self._drop_locked(primary)
                self.invalidations += 1
                return None, "invalidated"
            self._entries.move_to_end(primary)
            self.hits += 1
            return entry.plan, "hit"

    def put(
        self,
        primary_key: PlanKey,
        plan: PhysicalPlan,
        alias_keys: Tuple[PlanKey, ...] = (),
    ) -> None:
        """Admit a plan under its canonical key plus optional alias slots.

        Re-admitting an existing primary key replaces the entry (its old
        alias slots are released).  The plan's own ``signature`` — stamped
        at build time — is what future lookups compare against.
        """
        if not self.enabled:
            return
        with self._lock:
            if primary_key in self._entries:
                self._drop_locked(primary_key)
            entry = _Entry(plan, plan.signature, tuple(alias_keys))
            self._entries[primary_key] = entry
            for alias in entry.alias_keys:
                self._aliases[alias] = primary_key
            while len(self._entries) > self._capacity:
                oldest, _ = next(iter(self._entries.items()))
                self._drop_locked(oldest)
                self.evictions += 1

    def add_alias(self, alias_key: PlanKey, primary_key: PlanKey) -> None:
        """Attach another raw-SQL slot to an already-cached entry (a later
        spelling of the same canonical statement)."""
        if not self.enabled:
            return
        with self._lock:
            entry = self._entries.get(primary_key)
            if entry is None or alias_key in self._aliases:
                return
            entry.alias_keys = entry.alias_keys + (alias_key,)
            self._aliases[alias_key] = primary_key

    # ------------------------------------------------------------------
    def evict_for_table(self, table_name: str) -> int:
        """Drop every plan referencing ``table_name``; returns the count."""
        with self._lock:
            victims = [
                key
                for key, entry in self._entries.items()
                if table_name in entry.plan.table_names()
            ]
            for key in victims:
                self._drop_locked(key)
            self.evictions += len(victims)
            return len(victims)

    def clear(self) -> int:
        """Drop everything; returns the number of entries dropped."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self._aliases.clear()
            self.evictions += n
            return n

    def stats(self) -> Dict[str, int]:
        """A consistent snapshot of the lifetime counters."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            }

    def cached_plans(self) -> List[PhysicalPlan]:
        """The live plans, LRU order (oldest first; diagnostics only)."""
        with self._lock:
            return [entry.plan for entry in self._entries.values()]

    # ------------------------------------------------------------------
    def _drop_locked(self, primary_key: PlanKey) -> None:
        entry = self._entries.pop(primary_key, None)
        if entry is None:
            return
        for alias in entry.alias_keys:
            if self._aliases.get(alias) == primary_key:
                del self._aliases[alias]
