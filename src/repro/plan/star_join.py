"""Star-join table detection for compensation-variant reduction.

Delta compensation enumerates one subjoin per non-all-main partition
combination: ``2^t - 1`` variants for ``t`` joined tables, which caps
practical join width at ~4 tables.  The star-join observation (the
"p0 table" handling in partition-wise join processors, and the paper's
own dimension-table argument) is that a table whose delta partitions
hold no rows cannot contribute a non-main partition to any *non-empty*
subjoin — so it can be **excluded** from variant generation and its main
partition re-attached to every remaining variant, collapsing the
enumeration to ``2^k - 1`` over the ``k`` remaining ("filtering")
tables.  Unlike enumerate-then-prune, the excluded combinations are
never materialized, and the reduced combo set is *stable*, which keeps
per-combo delta memos reusable across queries.

Detection is tiered; the tier only decides the *recorded reason*, while
every candidate must independently pass the soundness gate:

* ``override`` — the table was named in an explicit
  ``star_join_tables=...`` override (per query or per config).  When an
  override is present it *replaces* automatic detection: only the named
  tables are candidates, and ``star_join_tables=()`` disables exclusion
  for the statement entirely.
* ``non_filtering`` — the alias contributes nothing beyond its join
  keys: no local WHERE predicates, no references from residual
  (multi-table) filters, no group-by columns, no aggregate arguments.
  The classic star-join hub/bridge table.
* ``empty_delta`` — the table filters (so it stays interesting to the
  reader) but all of its delta partitions are physically empty, which
  is the common steady state for dimension tables between merges.

The **soundness gate** applies to every tier: pinning a table to its
main partition is only correct when *all* of its write-side partitions
are physically empty (``row_count == 0`` — conservative: invalidated
but unmerged rows still count) and the table is not aged (a single main
partition exists to pin).  A non-filtering table with delta rows must
NOT be excluded: its delta rows can join another table's delta rows,
and pinning it to main would silently drop that contribution.  The gate
is re-validated at enumeration time by
:func:`~repro.core.delta_compensation.compensation_assignments`, so a
stale exclusion decision degrades to full enumeration instead of a
wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union

from ..query.query import AggregateQuery
from ..storage.catalog import Catalog
from ..storage.table import Table

REASON_OVERRIDE = "override"
REASON_NON_FILTERING = "non_filtering"
REASON_EMPTY_DELTA = "empty_delta"

#: Accepted override spellings: a comma-separated string, or any iterable
#: of table/alias names.  ``None`` means "no override; detect".
StarJoinOverride = Optional[Union[str, Iterable[str]]]


@dataclass(frozen=True)
class ExcludedTable:
    """One table excluded from compensation-variant generation."""

    alias: str
    table: str
    reason: str  # REASON_OVERRIDE | REASON_NON_FILTERING | REASON_EMPTY_DELTA

    def describe(self) -> str:
        """``alias:reason`` — the rendering used by EXPLAIN and spans."""
        return f"{self.alias}:{self.reason}"


def normalize_star_join_override(
    override: StarJoinOverride,
) -> Optional[Tuple[str, ...]]:
    """Canonicalize an override value for signatures and plan-cache keys.

    ``None`` stays ``None`` (automatic detection); anything else becomes a
    sorted, deduplicated tuple of names — ``()`` is the explicit "exclude
    nothing" override, distinct from ``None``.
    """
    if override is None:
        return None
    if isinstance(override, str):
        names = [part.strip() for part in override.split(",")]
    else:
        names = [str(name).strip() for name in override]
    return tuple(sorted({name for name in names if name}))


def exclusion_is_sound(table: Table) -> bool:
    """The gate: pinning ``table`` to its main drops no rows, provably.

    Requires a single unaged main to pin and physically empty write-side
    partitions (deltas and update-deltas; ``row_count`` counts invalidated
    rows too, which keeps the check snapshot-independent so one plan can
    serve every reader).
    """
    if table.is_aged():
        return False
    if len(table.main_partitions()) != 1:
        return False
    return all(p.row_count == 0 for p in table.delta_partitions())


def alias_is_filtering(query: AggregateQuery, alias: str) -> bool:
    """True when ``alias`` contributes anything beyond its join keys:
    local filters, residual-filter references, group-by columns, or
    aggregate arguments."""
    if query.local_filters(alias):
        return True
    for expr in query.residual_filters():
        if any(a == alias for a, _ in expr.column_refs()):
            return True
    if any(col.alias == alias for col in query.group_by):
        return True
    for spec in query.aggregates:
        if spec.arg is not None and any(
            a == alias for a, _ in spec.arg.column_refs()
        ):
            return True
    return False


def detect_star_join_tables(
    query: AggregateQuery,
    catalog: Catalog,
    override: Optional[Tuple[str, ...]] = None,
) -> Tuple[ExcludedTable, ...]:
    """Decide which of the bound query's tables to exclude from variant
    generation, with a reason per table.

    ``override`` (already normalized) replaces automatic detection when
    not ``None``: only tables named there (by alias or table name) are
    candidates.  Every candidate — override or detected — must pass
    :func:`exclusion_is_sound`; reason precedence for detected tables is
    ``non_filtering`` over ``empty_delta``.  The result is sorted by
    alias so it is deterministic across FROM-order re-spellings.
    """
    excluded = []
    for ref in query.tables:
        if not exclusion_is_sound(catalog.table(ref.table)):
            continue
        if override is not None:
            if ref.alias in override or ref.table in override:
                excluded.append(
                    ExcludedTable(ref.alias, ref.table, REASON_OVERRIDE)
                )
            continue
        if not alias_is_filtering(query, ref.alias):
            reason = REASON_NON_FILTERING
        else:
            reason = REASON_EMPTY_DELTA
        excluded.append(ExcludedTable(ref.alias, ref.table, reason))
    return tuple(sorted(excluded, key=lambda e: e.alias))


def excluded_fingerprint(
    excluded: Tuple[ExcludedTable, ...]
) -> Tuple[Tuple[str, str], ...]:
    """The ``(alias, reason)`` tuple embedded in plan signatures and
    delta-memo identities (see ISSUE satellite: toggling the exclusion
    decision must never replay a memo folded over a different combo set)."""
    return tuple((e.alias, e.reason) for e in excluded)
