"""Physical planning: :class:`LogicalPlan` → :class:`PhysicalPlan`.

The :class:`Planner` lowers a bound statement to everything execution
needs, decided once: the cached all-main combinations with their cache
keys, the full compensation-subjoin list with each subjoin's fate (prune
verdict + reason, pushdown filters), and a cost-seeded join order / probe
side per evaluated subjoin (estimated partition row counts through
:mod:`repro.plan.cost`).  EXPLAIN, EXPLAIN ANALYZE, and ``execute`` all
consume the same :class:`PhysicalPlan` object, so they cannot drift.

A plan is a snapshot of the partition layout at build time; its
``signature`` folds every referenced table's version counter, so the plan
cache can decide validity with an integer compare (see
:func:`plan_signature`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..query.executor import ComboSpec, all_partition_combos, main_only_combos
from ..query.expr import Expr
from ..query.query import AggregateQuery
from ..storage.catalog import Catalog
from ..storage.partition import Partition
from ..core.cache_key import CacheKey, cache_key_for
from ..core.delta_compensation import (
    compensation_assignments,
    excluded_combo_count,
    sound_exclusions,
)
from ..core.pruning import JoinPruner, PruneReport
from ..core.strategies import CacheConfig, ExecutionStrategy
from .cost import choose_join_order, estimate_scan_rows, tier_weighted_costs
from .logical import LogicalPlan
from .star_join import (
    ExcludedTable,
    detect_star_join_tables,
    excluded_fingerprint,
    normalize_star_join_override,
)


@dataclass
class PlannedSubjoin:
    """One subjoin's planned fate: evaluate (how) or pruned (why)."""

    partitions: Dict[str, Partition]
    action: str  # "evaluate" | "pruned"
    reason: str = ""  # "", "empty", "logical", "dynamic"
    pushdown: Dict[str, List[Expr]] = field(default_factory=dict)
    #: Plan-time scan-size estimates per alias (cost-model input).
    estimated_rows: Dict[str, int] = field(default_factory=dict)
    #: Tier-weighted scan costs (rows × cold-scan multiplier) — what the
    #: join ordering actually ranked; equals ``estimated_rows`` while every
    #: partition is resident.
    estimated_cost: Dict[str, float] = field(default_factory=dict)
    #: Cost-seeded probe side and full left-deep order (probe first).
    probe_side: Optional[str] = None
    join_order: List[str] = field(default_factory=list)
    #: True on pruned subjoins that involved a memory-mapped cold
    #: partition: the verdict came from the RAM synopsis, a cold disk
    #: scan was skipped without faulting anything in.
    synopsis_pruned: bool = False

    def partition_names(self) -> Dict[str, str]:
        """alias → partition name (the rendering-friendly view)."""
        return {alias: p.name for alias, p in self.partitions.items()}

    def to_spec(self) -> ComboSpec:
        """A fresh executor :class:`ComboSpec` for this subjoin."""
        return ComboSpec(
            dict(self.partitions),
            extra_filters={a: list(f) for a, f in self.pushdown.items()},
        )


@dataclass
class PhysicalPlan:
    """Everything needed to answer one statement under one strategy."""

    logical: LogicalPlan
    strategy: ExecutionStrategy
    signature: Tuple = ()
    cached_combos: List[Dict[str, Partition]] = field(default_factory=list)
    cache_keys: List[CacheKey] = field(default_factory=list)
    subjoins: List[PlannedSubjoin] = field(default_factory=list)
    prune: PruneReport = field(default_factory=PruneReport)
    #: Star-join variant reduction: tables pinned to their mains with a
    #: reason each, and the per-statement override the plan was built
    #: under (None = automatic detection) — both part of the signature.
    excluded: Tuple[ExcludedTable, ...] = ()
    star_override: Optional[Tuple[str, ...]] = None

    @property
    def query(self) -> AggregateQuery:
        """The bound statement this plan answers."""
        return self.logical.query

    @property
    def cacheable(self) -> bool:
        """True when every aggregate qualifies for the aggregate cache."""
        return self.logical.cacheable

    def table_names(self) -> List[str]:
        """Distinct referenced table names, sorted."""
        return self.logical.table_names()

    def evaluated_specs(self) -> List[ComboSpec]:
        """Fresh :class:`ComboSpec`\\ s for every non-pruned subjoin."""
        return [s.to_spec() for s in self.subjoins if s.action == "evaluate"]

    def excluded_fingerprint(self) -> Tuple[Tuple[str, str], ...]:
        """The ``(alias, reason)`` exclusion decision this plan's combo
        set was generated under — part of delta-memo identity."""
        return excluded_fingerprint(self.excluded)

    def recycle_fingerprint(self) -> Tuple:
        """The join-core identity of this plan's statement, memoized on the
        plan so the plan cache doubles as the recycler's handle: a
        plan-cache hit reuses the fingerprint without recomputation.  (A
        racing double-compute stores the same tuple twice — benign.)"""
        fingerprint = getattr(self, "_recycle_fp", None)
        if fingerprint is None:
            from ..core.recycler import join_core_fingerprint

            fingerprint = join_core_fingerprint(self.query)
            self._recycle_fp = fingerprint
        return fingerprint


def plan_signature(
    catalog: Catalog,
    config: CacheConfig,
    table_names: Sequence[str],
    star_override: Optional[Tuple[str, ...]] = None,
    excluded: Tuple[ExcludedTable, ...] = (),
) -> Tuple:
    """The validity fingerprint of a plan over ``table_names``.

    Folds the pruning-relevant config switches plus every referenced
    table's (name, id, version): DML, merges, and schema changes bump the
    version, drop/recreate changes the id — so "is this cached plan still
    valid?" is a tuple equality, no content inspection.  Raises
    ``CatalogError`` when a referenced table no longer exists (the caller
    treats that as invalidated).

    The star-join component pins the variant-reduction decision: the
    config flag and override, the per-statement override, and the
    resulting ``(alias, reason)`` exclusions.  Toggling any of these —
    or a dimension delta going empty→non-empty, which flips the detected
    exclusions — changes the signature, invalidating cached plans *and*
    delta memos stamped with it (memos folded over a different combo set
    must never be replayed; see :func:`repro.core.delta_memo.classify_memo`).
    """
    return (
        config.predicate_pushdown,
        config.enforce_referential_integrity,
        (
            config.star_join_reduction,
            normalize_star_join_override(config.star_join_tables),
            star_override,
            excluded_fingerprint(excluded),
        ),
        tuple(
            (name, catalog.table(name).table_id, catalog.table(name).version)
            for name in table_names
        ),
    )


class Planner:
    """Lowers bound statements to physical plans against one catalog."""

    def __init__(self, catalog: Catalog, config: CacheConfig):
        self._catalog = catalog
        self._config = config

    def build(
        self,
        logical: LogicalPlan,
        strategy: ExecutionStrategy,
        mds: Sequence = (),
        agings: Sequence = (),
        star_override: Optional[Tuple[str, ...]] = None,
    ) -> PhysicalPlan:
        """Plan ``logical`` under ``strategy`` with the given object
        declarations (matching dependencies / consistent agings).

        ``star_override`` is the normalized per-statement
        ``star_join_tables`` override (None = fall back to the config
        override, then automatic detection).
        """
        bound = logical.query
        excluded: Tuple[ExcludedTable, ...] = ()
        if (
            strategy.uses_cache
            and strategy.prunes_empty
            and logical.cacheable
            and self._config.star_join_reduction
        ):
            effective = (
                star_override
                if star_override is not None
                else normalize_star_join_override(self._config.star_join_tables)
            )
            excluded = detect_star_join_tables(bound, self._catalog, effective)
        plan = PhysicalPlan(
            logical=logical,
            strategy=strategy,
            signature=plan_signature(
                self._catalog,
                self._config,
                logical.table_names(),
                star_override=star_override,
                excluded=excluded,
            ),
            excluded=excluded,
            star_override=star_override,
        )
        if not strategy.uses_cache or not logical.cacheable:
            # The uncached path evaluates the full product and never runs
            # the pruner, so the prune report stays zeroed — matching what
            # execution reports for these statements.
            for assignment in all_partition_combos(bound, self._catalog):
                plan.subjoins.append(self._planned_evaluate(bound, assignment, {}))
            return plan
        plan.cached_combos = main_only_combos(bound, self._catalog)
        plan.cache_keys = [
            cache_key_for(bound, self._catalog, combo)
            for combo in plan.cached_combos
        ]
        pruner: Optional[JoinPruner] = None
        if strategy.prunes_empty or strategy.prunes_dynamic:
            # obs=None: per-decision metrics would under-count on plan-cache
            # hits.  The manager folds the plan's PruneReport into the
            # registry once per query instead.
            pruner = JoinPruner(
                bound,
                mds,
                agings,
                strategy,
                predicate_pushdown=self._config.predicate_pushdown,
                assume_md_integrity=self._config.enforce_referential_integrity,
                obs=None,
            )
        live = sound_exclusions(bound, self._catalog, plan.excluded)
        if live:
            plan.prune.excluded_tables = len(live)
            plan.prune.combos_excluded = excluded_combo_count(
                bound, self._catalog, live
            )
        for assignment in compensation_assignments(
            bound, self._catalog, plan.cached_combos, live
        ):
            plan.prune.combos_total += 1
            if pruner is None:
                plan.prune.evaluated += 1
                plan.subjoins.append(self._planned_evaluate(bound, assignment, {}))
                continue
            reason, pushdown = pruner.check(assignment)
            if reason is not None:
                if reason == "empty":
                    plan.prune.pruned_empty += 1
                elif reason == "logical":
                    plan.prune.pruned_logical += 1
                else:
                    plan.prune.pruned_dynamic += 1
                synopsis = any(
                    p.storage_tier == "mapped" for p in assignment.values()
                )
                if synopsis:
                    plan.prune.synopsis_skips += 1
                plan.subjoins.append(
                    PlannedSubjoin(
                        dict(assignment), "pruned", reason,
                        synopsis_pruned=synopsis,
                    )
                )
                continue
            plan.prune.evaluated += 1
            plan.prune.pushdown_filters += sum(len(v) for v in pushdown.values())
            plan.subjoins.append(self._planned_evaluate(bound, assignment, pushdown))
        return plan

    def _planned_evaluate(
        self,
        bound: AggregateQuery,
        assignment: Dict[str, Partition],
        pushdown: Dict[str, List[Expr]],
    ) -> PlannedSubjoin:
        """Annotate an evaluated subjoin with its cost-seeded join order."""
        estimates = {
            alias: estimate_scan_rows(
                partition.row_count,
                len(bound.local_filters(alias)) + len(pushdown.get(alias, ())),
            )
            for alias, partition in assignment.items()
        }
        # Ordering ranks tier-weighted costs, not raw rows: a memory-mapped
        # cold partition scans at a penalty, so comparable inputs prefer
        # probing/hashing on the resident side.
        costs = tier_weighted_costs(estimates, assignment)
        probe, steps = choose_join_order(bound, costs)
        return PlannedSubjoin(
            partitions=dict(assignment),
            action="evaluate",
            pushdown={a: list(f) for a, f in pushdown.items()},
            estimated_rows=estimates,
            estimated_cost=costs,
            probe_side=probe,
            join_order=[probe] + [step.alias for step in steps],
        )
