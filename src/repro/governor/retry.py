"""Bounded exponential backoff with jitter for transient I/O failures.

Durability writes (WAL appends, checkpoint materialization) can hit
*transient* ``OSError``s — EINTR, a momentary ENOSPC, an NFS hiccup —
that succeed on retry.  :class:`RetryPolicy` retries the operation a
bounded number of times with exponentially growing, jittered sleeps;
anything still failing after the budget is exhausted escalates to the
caller (and, through the governor, feeds the durability circuit breaker).

Only the exception types in ``retry_on`` are retried: injected
``FaultError``/``SimulatedCrash`` and programming errors always
propagate immediately.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """``attempts`` total tries; sleep ``backoff_ms * 2^n`` (capped,
    ±``jitter`` fraction) between them.

    ``attempts=1`` disables retrying without disabling the wrapper.
    """

    attempts: int = 3
    backoff_ms: float = 1.0
    cap_ms: float = 50.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_ms < 0 or self.cap_ms < 0:
            raise ValueError("backoff must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_s(self, attempt: int, rng=random) -> float:
        """Sleep (seconds) before retry number ``attempt`` (0-based)."""
        base = min(self.backoff_ms * (2.0 ** attempt), self.cap_ms)
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, base) / 1000.0

    def call(
        self,
        fn: Callable[[], T],
        retry_on: Tuple[Type[BaseException], ...] = (OSError,),
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> T:
        """Run ``fn``, retrying on ``retry_on``; re-raise the last failure.

        ``on_retry(attempt, exc)`` fires before each sleep — the governor
        uses it to count retries per instrumentation point.
        """
        for attempt in range(self.attempts):
            try:
                return fn()
            except retry_on as exc:
                if attempt + 1 >= self.attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(self.delay_s(attempt))
        raise AssertionError("unreachable")  # pragma: no cover
