"""Circuit breakers guarding the durability and cache code paths.

A breaker watches consecutive failures of one subsystem and, once a
threshold is crossed, *opens*: the guarded path is skipped outright
(writes rejected / aggregate cache bypassed) instead of failing slowly
over and over.  After a cooldown the breaker *half-opens* and admits a
single probe; a successful probe closes the breaker, a failed one
re-opens it and restarts the cooldown.

::

                 failure x threshold              cooldown elapsed
        CLOSED ───────────────────────▶ OPEN ───────────────────────▶ HALF_OPEN
          ▲                              ▲                               │
          │        probe succeeds        │        probe fails            │
          └──────────────────────────────┴───────────────────────────────┘

All transitions are lock-protected; the clock is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding used for the ``repro_governor_breaker_state`` gauge.
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


@dataclass(frozen=True)
class BreakerSnapshot:
    """Point-in-time view of one breaker (``db.health()`` / monitor)."""

    name: str
    state: str
    consecutive_failures: int
    failures_total: int
    opened_total: int
    last_error: Optional[str]


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing.

    ``threshold`` consecutive failures open the breaker; after
    ``reset_after_s`` a single probe is admitted.  ``on_transition(name,
    to_state)`` fires (outside the lock) on every state change — the
    governor uses it to drive the breaker-state gauge and transition
    counters.
    """

    def __init__(
        self,
        name: str,
        threshold: int = 5,
        reset_after_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.name = name
        self.threshold = threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._failures_total = 0
        self._opened_total = 0
        self._opened_at: Optional[float] = None
        self._probe_started_at: Optional[float] = None
        self._last_error: Optional[str] = None

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """Whether the guarded operation may run right now.

        In ``open``, flips to ``half_open`` (admitting this caller as the
        probe) once the cooldown has elapsed.  In ``half_open``, admits a
        replacement probe if the previous one has been silent for a full
        cooldown — a probe that died without reporting must not wedge the
        breaker forever.
        """
        transition = None
        with self._lock:
            if self._state == CLOSED:
                return True
            now = self._clock()
            if self._state == OPEN:
                if now - self._opened_at >= self.reset_after_s:
                    self._state = HALF_OPEN
                    self._probe_started_at = now
                    transition = HALF_OPEN
                else:
                    return False
            elif now - self._probe_started_at >= self.reset_after_s:
                self._probe_started_at = now  # stale probe: admit another
            else:
                return False
        self._notify(transition)
        return True

    def record_success(self) -> None:
        """The guarded operation succeeded; closes a half-open breaker."""
        if self._state == CLOSED and self._consecutive_failures == 0:
            return  # benign unlocked fast path for the steady state
        transition = None
        with self._lock:
            self._consecutive_failures = 0
            self._last_error = None
            if self._state != CLOSED:
                self._state = CLOSED
                self._opened_at = None
                self._probe_started_at = None
                transition = CLOSED
        self._notify(transition)

    def record_failure(self, error: Optional[BaseException] = None) -> None:
        """The guarded operation failed; may open the breaker."""
        transition = None
        with self._lock:
            self._consecutive_failures += 1
            self._failures_total += 1
            if error is not None:
                self._last_error = f"{type(error).__name__}: {error}"
            tripped = (
                self._state == HALF_OPEN
                or (self._state == CLOSED
                    and self._consecutive_failures >= self.threshold)
            )
            if tripped:
                self._state = OPEN
                self._opened_at = self._clock()
                self._opened_total += 1
                self._probe_started_at = None
                transition = OPEN
        self._notify(transition)

    def snapshot(self) -> BreakerSnapshot:
        with self._lock:
            return BreakerSnapshot(
                name=self.name,
                state=self._state,
                consecutive_failures=self._consecutive_failures,
                failures_total=self._failures_total,
                opened_total=self._opened_total,
                last_error=self._last_error,
            )

    def _notify(self, to_state: Optional[str]) -> None:
        if to_state is not None and self._on_transition is not None:
            self._on_transition(self.name, to_state)
