"""Resource governance: deadlines, budgets, retries, and degraded modes.

See :mod:`repro.governor.governor` for the overview; the pieces are

* :class:`Deadline` / :class:`CancelToken` — cooperative query cancellation;
* :class:`RetryPolicy` — bounded exponential backoff for transient I/O;
* :class:`CircuitBreaker` — closed → open → half-open failure isolation;
* :class:`ResourceGovernor` / :class:`GovernorConfig` / :class:`HealthReport`
  — the facade-level state machine tying them together.
"""

from .breaker import BreakerSnapshot, CircuitBreaker
from .deadline import CancelToken, Deadline
from .governor import (
    CACHE_DEGRADED,
    HEALTHY,
    WAL_DEGRADED,
    GovernorConfig,
    HealthReport,
    ResourceGovernor,
)
from .retry import RetryPolicy

__all__ = [
    "BreakerSnapshot",
    "CircuitBreaker",
    "CancelToken",
    "Deadline",
    "GovernorConfig",
    "HealthReport",
    "ResourceGovernor",
    "RetryPolicy",
    "HEALTHY",
    "WAL_DEGRADED",
    "CACHE_DEGRADED",
]
