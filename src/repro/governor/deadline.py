"""Query deadlines and cooperative cancellation.

Queries cannot be preempted — Python threads only stop where the code
lets them — so cancellation is *cooperative*: the executor calls
``token.check()`` at every subjoin/batch boundary (serial loop iterations,
parallel worker tasks, delta-memo incremental scans) and the check raises
a typed :class:`~repro.errors.QueryAborted` subclass the moment the token
is cancelled or its deadline has expired.

The abort surfaces through the normal exception machinery, which already
releases auto-started transactions and read locks; partial delta-memo
advances are discarded because memos are only installed after a fully
successful run, and cache/statistics updates happen strictly after the
last check — so an aborted query leaves no torn state behind.
"""

from __future__ import annotations

import time
from typing import Optional

from ..errors import QueryCancelled, QueryTimeout


class Deadline:
    """A monotonic-clock expiry point.

    Built via :meth:`after_ms`; carried by a :class:`CancelToken`.
    """

    __slots__ = ("expires_at", "timeout_ms")

    def __init__(self, expires_at: float, timeout_ms: float):
        self.expires_at = expires_at
        self.timeout_ms = timeout_ms

    @classmethod
    def after_ms(cls, timeout_ms: float, clock=time.monotonic) -> "Deadline":
        """A deadline ``timeout_ms`` from now on the monotonic clock."""
        if timeout_ms < 0:
            raise ValueError(f"timeout_ms must be >= 0, got {timeout_ms!r}")
        return cls(clock() + timeout_ms / 1000.0, timeout_ms)

    def expired(self, clock=time.monotonic) -> bool:
        return clock() >= self.expires_at

    def remaining_ms(self, clock=time.monotonic) -> float:
        """Milliseconds until expiry (never negative)."""
        return max(0.0, (self.expires_at - clock()) * 1000.0)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Deadline(timeout_ms={self.timeout_ms}, remaining_ms={self.remaining_ms():.1f})"


#: Deadline checks are dominated by the monotonic-clock read.  The token
#: reads the clock on its first :meth:`CancelToken.check` (so an
#: already-expired deadline aborts at the very first boundary) and then
#: only every ``CHECK_STRIDE``-th check — bounding the hit-path cost at
#: one clock read per stride while keeping abort latency within a
#: handful of subjoin batches.  Explicit cancellation is still observed
#: on *every* check.
CHECK_STRIDE = 16


class CancelToken:
    """Cooperative cancellation handle threaded through one query.

    A token is cancelled explicitly (:meth:`cancel`, from any thread) or
    implicitly by its :class:`Deadline` expiring; :meth:`check` raises
    :class:`~repro.errors.QueryCancelled` / :class:`~repro.errors.QueryTimeout`
    respectively.  One token may be shared by all parallel workers of a
    query — both paths are thread-safe and idempotent.  The cancelled
    flag is a plain slot (writes are atomic under the GIL, and the reason
    is written strictly before the flag), and the stride counter races
    benignly: a torn update only shifts *when* the next clock read
    happens, never whether cancellation is observed.
    """

    __slots__ = ("deadline", "_cancelled", "_reason", "_countdown")

    def __init__(self, deadline: Optional[Deadline] = None):
        self.deadline = deadline
        self._cancelled = False
        self._reason: Optional[str] = None
        self._countdown = 0  # first check always reads the clock

    def cancel(self, reason: Optional[str] = None) -> None:
        """Request cancellation; the query aborts at its next check."""
        self._reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def expired(self) -> bool:
        return self.deadline is not None and self.deadline.expired()

    def check(self) -> None:
        """Raise if cancelled or past the deadline; otherwise a no-op."""
        if self._cancelled:
            raise QueryCancelled(
                self._reason or "query cancelled by its CancelToken"
            )
        deadline = self.deadline
        if deadline is None:
            return
        if self._countdown > 0:
            self._countdown -= 1
            return
        self._countdown = CHECK_STRIDE - 1
        if deadline.expired():
            raise QueryTimeout(
                f"query exceeded its {deadline.timeout_ms:g} ms deadline",
                timeout_ms=deadline.timeout_ms,
            )
