"""The resource governor: one object owning every degradation decision.

:class:`ResourceGovernor` sits on the :class:`~repro.database.Database`
facade and cooperates with four mechanisms:

* **query deadlines** — :meth:`query_token` mints the per-query
  :class:`~repro.governor.deadline.CancelToken` (default budget from
  ``REPRO_QUERY_TIMEOUT_MS``) and the facade reports the resulting
  timeouts/cancellations back for accounting;
* **memory budgets** — ``memory_budget_bytes`` is the ceiling the cache
  manager sheds down to (``REPRO_MEMORY_BUDGET_MB``), with every shed
  recorded here;
* **durability breaker** — WAL appends and checkpoint writes retry
  transient ``OSError``s through :attr:`retry`; exhausted retries feed
  :attr:`wal_breaker`, and while it is open the database is
  *WAL-degraded*: :meth:`ensure_writes_allowed` rejects mutations with
  :class:`~repro.errors.WriteRejectedError` while reads keep serving;
* **cache breaker** — failures inside cached execution feed
  :attr:`cache_breaker`; while it is open the database is
  *cache-degraded*: queries bypass the aggregate cache and answer from
  the base tables.

:meth:`health` condenses all of it into a :class:`HealthReport` for
``db.health()``, the monitor, and the shell's ``\\health`` command; the
same numbers feed the ``repro_governor_*`` metrics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..envutil import env_float, env_int
from ..errors import WriteRejectedError
from .breaker import CLOSED, OPEN, STATE_CODES, BreakerSnapshot, CircuitBreaker
from .deadline import CancelToken, Deadline
from .retry import RetryPolicy

#: Environment knobs (all parsed through :mod:`repro.envutil`).
QUERY_TIMEOUT_ENV = "REPRO_QUERY_TIMEOUT_MS"
MEMORY_BUDGET_ENV = "REPRO_MEMORY_BUDGET_MB"
WAL_RETRIES_ENV = "REPRO_WAL_RETRIES"
RETRY_BACKOFF_ENV = "REPRO_RETRY_BACKOFF_MS"
BREAKER_THRESHOLD_ENV = "REPRO_BREAKER_THRESHOLD"
BREAKER_RESET_ENV = "REPRO_BREAKER_RESET_MS"

#: Health states (the two degraded modes may hold simultaneously).
HEALTHY = "healthy"
WAL_DEGRADED = "wal_degraded"
CACHE_DEGRADED = "cache_degraded"


@dataclass(frozen=True)
class GovernorConfig:
    """Tunable limits; :meth:`from_env` reads the ``REPRO_*`` knobs.

    ``query_timeout_ms=None`` / ``memory_budget_mb=None`` disable the
    respective mechanism entirely (zero per-query overhead).
    """

    query_timeout_ms: Optional[float] = None
    memory_budget_mb: Optional[float] = None
    wal_retries: int = 3
    retry_backoff_ms: float = 1.0
    breaker_threshold: int = 5
    breaker_reset_ms: float = 1000.0

    @classmethod
    def from_env(cls) -> "GovernorConfig":
        defaults = cls()
        return cls(
            query_timeout_ms=env_float(QUERY_TIMEOUT_ENV, None, minimum=1.0),
            memory_budget_mb=env_float(MEMORY_BUDGET_ENV, None, minimum=0.001),
            wal_retries=env_int(WAL_RETRIES_ENV, defaults.wal_retries, minimum=1),
            retry_backoff_ms=env_float(
                RETRY_BACKOFF_ENV, defaults.retry_backoff_ms, minimum=0.0
            ),
            breaker_threshold=env_int(
                BREAKER_THRESHOLD_ENV, defaults.breaker_threshold, minimum=1
            ),
            breaker_reset_ms=env_float(
                BREAKER_RESET_ENV, defaults.breaker_reset_ms, minimum=1.0
            ),
        )


@dataclass(frozen=True)
class HealthReport:
    """One coherent snapshot of the degradation state machine."""

    state: str  # "healthy" or "degraded"
    modes: List[str]  # active degraded modes, e.g. ["wal_degraded"]
    breakers: Dict[str, BreakerSnapshot]
    timeouts: int
    cancellations: int
    writes_rejected: int
    degraded_queries: int
    retries: Dict[str, int]
    sheds: Dict[str, int]
    shed_bytes: int
    tracked_bytes: Optional[int]
    memory_budget_bytes: Optional[int]

    def render(self) -> str:
        """Human-readable block for the shell's ``\\health`` command."""
        lines = [f"state: {self.state}"]
        if self.modes:
            lines.append(f"modes: {', '.join(self.modes)}")
        for name in sorted(self.breakers):
            b = self.breakers[name]
            detail = (
                f"breaker[{name}]: {b.state}"
                f" (consecutive_failures={b.consecutive_failures},"
                f" failures_total={b.failures_total},"
                f" opened_total={b.opened_total})"
            )
            if b.last_error:
                detail += f" last_error={b.last_error}"
            lines.append(detail)
        lines.append(
            f"queries: timeouts={self.timeouts}"
            f" cancellations={self.cancellations}"
            f" degraded={self.degraded_queries}"
        )
        lines.append(f"writes rejected: {self.writes_rejected}")
        if self.retries:
            pairs = ", ".join(
                f"{point}={n}" for point, n in sorted(self.retries.items())
            )
            lines.append(f"io retries: {pairs}")
        if self.memory_budget_bytes is not None:
            # None means "no reading yet" (the budget exists but nothing
            # has measured against it) — render it distinctly from a
            # genuine 0-byte measurement.
            tracked = (
                "untracked"
                if self.tracked_bytes is None
                else f"{self.tracked_bytes}B"
            )
            lines.append(
                f"memory: tracked={tracked}"
                f" budget={self.memory_budget_bytes}B"
                f" sheds={dict(sorted(self.sheds.items()))}"
                f" shed_bytes={self.shed_bytes}"
            )
        elif self.tracked_bytes is not None:
            lines.append(f"memory: tracked={self.tracked_bytes}B (no budget)")
        return "\n".join(lines)


class ResourceGovernor:
    """Owns the breakers, retry policy, budgets, and their accounting."""

    def __init__(self, config: Optional[GovernorConfig] = None, obs=None):
        self.config = config or GovernorConfig.from_env()
        self.obs = obs
        self.retry = RetryPolicy(
            attempts=self.config.wal_retries,
            backoff_ms=self.config.retry_backoff_ms,
        )
        reset_s = self.config.breaker_reset_ms / 1000.0
        self.wal_breaker = CircuitBreaker(
            "wal",
            threshold=self.config.breaker_threshold,
            reset_after_s=reset_s,
            on_transition=self._on_breaker_transition,
        )
        self.cache_breaker = CircuitBreaker(
            "cache",
            threshold=self.config.breaker_threshold,
            reset_after_s=reset_s,
            on_transition=self._on_breaker_transition,
        )
        budget_mb = self.config.memory_budget_mb
        self.memory_budget_bytes: Optional[int] = (
            int(budget_mb * 1024 * 1024) if budget_mb is not None else None
        )
        self._lock = threading.Lock()
        self._timeouts = 0
        self._cancellations = 0
        self._writes_rejected = 0
        self._degraded_queries = 0
        self._retries: Dict[str, int] = {}
        self._sheds: Dict[str, int] = {}
        self._shed_bytes = 0

    # ------------------------------------------------------------------
    # Query admission (deadlines / cancellation)
    # ------------------------------------------------------------------
    def query_token(
        self,
        timeout_ms: Optional[float] = None,
        cancel: Optional[CancelToken] = None,
    ) -> Optional[CancelToken]:
        """The token a query should run under, or ``None`` for ungoverned.

        An explicit ``timeout_ms`` wins over the configured default; a
        caller-supplied token is reused (gaining the deadline if it has
        none yet) so external cancellation keeps working.
        """
        if timeout_ms is None:
            timeout_ms = self.config.query_timeout_ms
        if cancel is not None:
            if timeout_ms is not None and cancel.deadline is None:
                cancel.deadline = Deadline.after_ms(timeout_ms)
            return cancel
        if timeout_ms is None:
            return None
        return CancelToken(Deadline.after_ms(timeout_ms))

    def record_timeout(self) -> None:
        with self._lock:
            self._timeouts += 1
        if self.obs is not None:
            self.obs.governor_timeouts.inc()

    def record_cancellation(self) -> None:
        with self._lock:
            self._cancellations += 1
        if self.obs is not None:
            self.obs.governor_cancellations.inc()

    # ------------------------------------------------------------------
    # Durability (WAL / checkpoint) degradation
    # ------------------------------------------------------------------
    def ensure_writes_allowed(self) -> None:
        """Gate every mutating entry point while WAL-degraded.

        Half-open admits writes freely: the *probe* is the next WAL
        append's outcome, not the gate check itself, and one logical
        mutation may pass the gate several times (``insert_many`` gates
        once per batch and once per row).
        """
        if self.wal_breaker.allow():
            return
        if self.wal_breaker.state != OPEN:
            return
        with self._lock:
            self._writes_rejected += 1
        if self.obs is not None:
            self.obs.governor_writes_rejected.inc()
        raise WriteRejectedError(
            "database is WAL-degraded (durability breaker open): writes "
            "are rejected until a half-open probe succeeds; reads are "
            "still served"
        )

    def record_io_retry(self, point: str) -> None:
        with self._lock:
            self._retries[point] = self._retries.get(point, 0) + 1
        if self.obs is not None:
            self.obs.governor_retries.labels(point).inc()

    def record_wal_failure(self, error: Optional[BaseException] = None) -> None:
        self.wal_breaker.record_failure(error)

    def record_wal_success(self) -> None:
        self.wal_breaker.record_success()

    # ------------------------------------------------------------------
    # Aggregate-cache degradation
    # ------------------------------------------------------------------
    def cache_path_allowed(self) -> bool:
        """Whether cached execution may run (half-open admits one probe)."""
        return self.cache_breaker.allow()

    def record_cache_failure(self, error: Optional[BaseException] = None) -> None:
        self.cache_breaker.record_failure(error)

    def record_cache_success(self) -> None:
        self.cache_breaker.record_success()

    def record_degraded_query(self, reason: str) -> None:
        with self._lock:
            self._degraded_queries += 1
        if self.obs is not None:
            self.obs.governor_degraded_queries.labels(reason).inc()

    # ------------------------------------------------------------------
    # Memory budget
    # ------------------------------------------------------------------
    def record_shed(self, kind: str, count: int, bytes_freed: int = 0) -> None:
        if count <= 0:
            return
        with self._lock:
            self._sheds[kind] = self._sheds.get(kind, 0) + count
            self._shed_bytes += bytes_freed
        if self.obs is not None:
            self.obs.governor_sheds.labels(kind).inc(count)
            if bytes_freed:
                self.obs.governor_shed_bytes.inc(bytes_freed)

    def set_tracked_bytes(self, tracked: int) -> None:
        if self.obs is not None:
            self.obs.governor_tracked_bytes.set(tracked)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def modes(self) -> List[str]:
        """Active degraded modes (half-open still counts: probing)."""
        active = []
        if self.wal_breaker.state != CLOSED:
            active.append(WAL_DEGRADED)
        if self.cache_breaker.state != CLOSED:
            active.append(CACHE_DEGRADED)
        return active

    def health(self, tracked_bytes: Optional[int] = None) -> HealthReport:
        modes = self.modes()
        if tracked_bytes is not None:
            self.set_tracked_bytes(tracked_bytes)
        with self._lock:
            return HealthReport(
                state="degraded" if modes else HEALTHY,
                modes=modes,
                breakers={
                    "wal": self.wal_breaker.snapshot(),
                    "cache": self.cache_breaker.snapshot(),
                },
                timeouts=self._timeouts,
                cancellations=self._cancellations,
                writes_rejected=self._writes_rejected,
                degraded_queries=self._degraded_queries,
                retries=dict(self._retries),
                sheds=dict(self._sheds),
                shed_bytes=self._shed_bytes,
                tracked_bytes=tracked_bytes,
                memory_budget_bytes=self.memory_budget_bytes,
            )

    def _on_breaker_transition(self, name: str, to_state: str) -> None:
        if self.obs is not None:
            self.obs.governor_breaker_state.labels(name).set(
                STATE_CODES[to_state]
            )
            self.obs.governor_breaker_transitions.labels(name, to_state).inc()
