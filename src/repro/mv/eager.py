"""Eager incremental view maintenance (Blakeley et al. [2]).

The view is maintained inside every modifying operation: the insert/update/
delete pays the maintenance cost, reads are free.  This is the classical
OLTP summary-table discipline whose write-side overhead Fig. 6 shows
dominating as the insert ratio grows.
"""

from __future__ import annotations

from typing import Dict

from ..database import Database
from .view import MaterializedView


class EagerIncrementalView(MaterializedView):
    """Maintained synchronously on every base-table change."""

    def __init__(self, db: Database, query, name: str = "eager_view",
                 backing: str = "memory"):
        super().__init__(db, query, name, backing=backing)
        db.register_write_listener(self)

    def close(self) -> None:
        """Detach from the database's write path."""
        self._db.unregister_write_listener(self)

    # write-listener protocol ------------------------------------------------
    def on_insert(self, table: str, row: Dict[str, object], tid: int) -> None:
        """Maintain the extent for an inserted base row."""
        if table == self.table_name:
            self._apply_row(row, sign=1)

    def on_update(
        self,
        table: str,
        old_row: Dict[str, object],
        new_row: Dict[str, object],
        tid: int,
    ) -> None:
        """Maintain the extent for an updated base row (remove + add)."""
        if table == self.table_name:
            self._apply_row(old_row, sign=-1)
            self._apply_row(new_row, sign=1)

    def on_delete(self, table: str, old_row: Dict[str, object], tid: int) -> None:
        """Maintain the extent for a deleted base row."""
        if table == self.table_name:
            self._apply_row(old_row, sign=-1)
