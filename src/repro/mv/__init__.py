"""Classical materialized-view maintenance baselines (Section 6.1)."""

from .eager import EagerIncrementalView
from .lazy import LazyIncrementalView
from .view import MaterializedView

__all__ = ["EagerIncrementalView", "LazyIncrementalView", "MaterializedView"]
