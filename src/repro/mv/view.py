"""Classical materialized views over main *and* delta (the Fig. 6 baselines).

Unlike the aggregate cache — whose extent covers the main partitions only —
a classical materialized view covers the full table state and therefore must
be maintained for *every* base-data change.  The two maintenance timings the
paper compares against (Section 6.1) are provided as subclasses:

* :class:`~repro.mv.eager.EagerIncrementalView` — maintain on every
  modification (Blakeley et al. [2]);
* :class:`~repro.mv.lazy.LazyIncrementalView` — log modifications and apply
  them right before the view is read (Zhou et al. [32]).

The views support single-table aggregate queries with self-maintainable
functions, which is the statement class of the Section 6.1 experiment
("the statements in this workload reference a single table").
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..database import Database
from ..errors import QueryError, UnsupportedQueryError
from ..query.aggregates import GroupedAggregates
from ..query.expr import Col
from ..query.query import AggregateQuery
from ..query.result import QueryResult
from ..query.sql import parse_sql
from .extent import InMemoryExtent, SummaryTableExtent


class _RowProvider:
    """Column provider over a single row dict (for per-change maintenance)."""

    __slots__ = ("_row",)

    def __init__(self, row: Dict[str, object]):
        self._row = row

    def get(self, alias: Optional[str], name: str) -> np.ndarray:
        """The row's value for ``name`` as a length-1 array."""
        out = np.empty(1, dtype=object)
        try:
            out[0] = self._row[name]
        except KeyError:
            raise QueryError(f"row has no column {name!r}") from None
        return out

    def row_count(self) -> int:
        """Always 1 — maintenance processes one row change at a time."""
        return 1


class MaterializedView:
    """Base class: full initial computation + per-row signed maintenance.

    ``backing`` selects where the extent lives: ``"memory"`` keeps a grouped
    hash map in process memory; ``"table"`` persists the extent as an engine
    summary table whose maintenance is a transactional write per change —
    the OLTP summary-table discipline the paper's Section 1 describes and
    the Fig. 6 experiment compares against.
    """

    def __init__(self, db: Database, query, name: str = "view",
                 backing: str = "memory"):
        if isinstance(query, str):
            query = parse_sql(query)
        self.name = name
        self._db = db
        self._query: AggregateQuery = db.executor.bind(query)
        if len(self._query.tables) != 1:
            raise UnsupportedQueryError(
                "materialized-view baselines support single-table queries "
                "(the statement class of the Section 6.1 experiment)"
            )
        if not self._query.is_self_maintainable():
            raise UnsupportedQueryError(
                "incremental view maintenance requires self-maintainable "
                "aggregates (SUM/COUNT/AVG)"
            )
        self.table_name = self._query.tables[0].table
        initial: GroupedAggregates = db.executor.execute(
            self._query, db.transactions.global_snapshot()
        )
        if backing == "memory":
            self._extent = InMemoryExtent(self._query.aggregates, initial)
        elif backing == "table":
            self._extent = SummaryTableExtent(
                db, self._query.aggregates, len(self._query.group_by),
                f"_mv_{name}", initial,
            )
        else:
            raise QueryError(f"unknown view backing {backing!r}")
        self.backing = backing
        self.maintenance_time = 0.0
        self.maintenance_operations = 0

    # ------------------------------------------------------------------
    # maintenance primitives
    # ------------------------------------------------------------------
    def _apply_row(self, row: Dict[str, object], sign: int) -> None:
        """Fold one row change into the view extent (the summary-delta step)."""
        started = time.perf_counter()
        provider = _RowProvider(row)
        for expr in self._query.filters:
            if not bool(expr.evaluate(provider)[0]):
                self.maintenance_time += time.perf_counter() - started
                return
        key = tuple(col.evaluate(provider)[0] for col in self._query.group_by)
        values: List[object] = []
        for spec in self._query.aggregates:
            if spec.arg is None:
                values.append(None)
            else:
                values.append(spec.arg.evaluate(provider)[0])
        self._extent.apply(key, values, sign)
        self.maintenance_operations += 1
        self.maintenance_time += time.perf_counter() - started

    def refresh_full(self) -> None:
        """Recompute the view from scratch (diagnostics / recovery path)."""
        started = time.perf_counter()
        grouped = self._db.executor.execute(
            self._query, self._db.transactions.global_snapshot()
        )
        self._extent.replace(grouped)
        self.maintenance_time += time.perf_counter() - started

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self) -> QueryResult:
        """The view contents (subclasses may maintain before serving)."""
        return QueryResult.from_rows(self._query, self._extent.rows())

    @property
    def query(self) -> AggregateQuery:
        """The bound query this view materializes."""
        return self._query

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r} ON {self.table_name!r})"
