"""Materialized-view extents: where the view's rows live.

The paper's Section 1 framing of classical maintenance is the OLTP summary
table: "the handling of aggregates in OLTP systems is often done within the
application by maintaining predefined summary tables ... the related summary
tables must be updated in the same transaction".  The
:class:`SummaryTableExtent` models exactly that — the view's groups are rows
of an ordinary engine table, and every maintenance step is a transactional
insert/update/delete of that table.  :class:`InMemoryExtent` is the cheap
in-process alternative (a plain grouped hash map) for applications that do
not need the extent to be a queryable table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..query.aggregates import AggFunc, AggregateSpec, GroupedAggregates

_KEY_SEPARATOR = "\x1f"


class InMemoryExtent:
    """Grouped hash-map extent (process memory, no engine writes)."""

    def __init__(self, specs: Sequence[AggregateSpec], initial: GroupedAggregates):
        self._grouped = initial

    def apply(self, key: Tuple, values: List[object], sign: int) -> None:
        """Fold one row change (key, per-spec values, sign) into the map."""
        columns = []
        for value in values:
            arr = np.empty(1, dtype=object)
            arr[0] = value
            columns.append(arr)
        self._grouped.accumulate([key], columns, sign=sign)

    def rows(self) -> List[Tuple]:
        """Finalized view rows."""
        return self._grouped.finalize()

    def replace(self, grouped: GroupedAggregates) -> None:
        """Full refresh: replace the grouped state."""
        self._grouped = grouped


class SummaryTableExtent:
    """Extent persisted as an engine summary table.

    One row per group; columns are the group values plus, per aggregate,
    the self-maintainable state (SUM and AVG keep ``sum``+``cnt``, COUNT
    keeps ``cnt``), plus the group's COUNT(*) used for group retirement.
    The group key is serialized into a single TEXT primary key so the
    storage engine's PK index provides the lookup the maintenance needs.
    """

    def __init__(self, db, specs: Sequence[AggregateSpec], n_group_cols: int,
                 table_name: str, initial: GroupedAggregates):
        self._db = db
        self._specs = list(specs)
        self._n_group = n_group_cols
        self._table_name = table_name
        columns: List[Tuple[str, str]] = [("gkey", "TEXT")]
        for i in range(n_group_cols):
            columns.append((f"g{i}", "TEXT"))
        for i, spec in enumerate(self._specs):
            if spec.func in (AggFunc.SUM, AggFunc.AVG):
                columns.append((f"a{i}_sum", "FLOAT"))
                columns.append((f"a{i}_cnt", "INT"))
            else:  # COUNT
                columns.append((f"a{i}_cnt", "INT"))
        columns.append(("n_star", "INT"))
        db.create_table(table_name, columns, primary_key="gkey")
        self._group_values: Dict[str, Tuple] = {}
        self._load_initial(initial)

    # ------------------------------------------------------------------
    def _serialize_key(self, key: Tuple) -> str:
        return _KEY_SEPARATOR.join(repr(part) for part in key)

    def _load_initial(self, grouped: GroupedAggregates) -> None:
        for key in list(grouped.keys()):
            row = self._fresh_row(key)
            states = grouped.raw_states(key)
            for i, spec in enumerate(self._specs):
                if spec.func in (AggFunc.SUM, AggFunc.AVG):
                    row[f"a{i}_sum"] = float(states[i][0])
                    row[f"a{i}_cnt"] = int(states[i][1])
                else:
                    row[f"a{i}_cnt"] = int(states[i][0])
            row["n_star"] = grouped.count_star(key)
            self._db.insert(self._table_name, row)

    def _fresh_row(self, key: Tuple) -> Dict[str, object]:
        gkey = self._serialize_key(key)
        self._group_values[gkey] = key
        row: Dict[str, object] = {"gkey": gkey}
        for i, part in enumerate(key):
            row[f"g{i}"] = None if part is None else str(part)
        for i, spec in enumerate(self._specs):
            if spec.func in (AggFunc.SUM, AggFunc.AVG):
                row[f"a{i}_sum"] = 0.0
                row[f"a{i}_cnt"] = 0
            else:
                row[f"a{i}_cnt"] = 0
        row["n_star"] = 0
        return row

    # ------------------------------------------------------------------
    def apply(self, key: Tuple, values: List[object], sign: int) -> None:
        """One transactional summary-table write per maintained base row."""
        table = self._db.table(self._table_name)
        gkey = self._serialize_key(key)
        current = table.get_row(gkey)
        if current is None:
            current = self._fresh_row(key)
            self._update_states(current, values, sign)
            self._db.insert(self._table_name, current)
            return
        self._group_values.setdefault(gkey, key)
        n_star = current["n_star"] + sign
        if n_star == 0:
            self._db.delete(self._table_name, gkey)
            return
        changes = self._update_states(dict(current), values, sign)
        changes["n_star"] = n_star
        self._db.update(self._table_name, gkey, changes)

    def _update_states(
        self, row: Dict[str, object], values: List[object], sign: int
    ) -> Dict[str, object]:
        row["n_star"] = row.get("n_star", 0) + sign
        for i, spec in enumerate(self._specs):
            value = values[i]
            if spec.func in (AggFunc.SUM, AggFunc.AVG):
                if value is not None:
                    row[f"a{i}_sum"] = row[f"a{i}_sum"] + sign * float(value)
                    row[f"a{i}_cnt"] = row[f"a{i}_cnt"] + sign
            else:  # COUNT
                if spec.arg is None or value is not None:
                    row[f"a{i}_cnt"] = row[f"a{i}_cnt"] + sign
        return row

    # ------------------------------------------------------------------
    def rows(self) -> List[Tuple]:
        """Finalized view rows read from the summary table."""
        table = self._db.table(self._table_name)
        snapshot = self._db.transactions.global_snapshot()
        state_columns = []
        for i, spec in enumerate(self._specs):
            if spec.func in (AggFunc.SUM, AggFunc.AVG):
                state_columns.append((spec.func, f"a{i}_sum", f"a{i}_cnt"))
            else:
                state_columns.append((spec.func, None, f"a{i}_cnt"))
        out: List[Tuple] = []
        for partition in table.partitions():
            rows = np.flatnonzero(partition.visible_mask(snapshot))
            if not len(rows):
                continue
            gkeys = partition.column("gkey").decode_rows(rows)
            decoded = {}
            for _func, sum_col, cnt_col in state_columns:
                if sum_col is not None and sum_col not in decoded:
                    decoded[sum_col] = partition.column(sum_col).decode_rows(rows)
                if cnt_col not in decoded:
                    decoded[cnt_col] = partition.column(cnt_col).decode_rows(rows)
            for pos in range(len(rows)):
                rendered: List[object] = list(self._group_values[gkeys[pos]])
                for func, sum_col, cnt_col in state_columns:
                    cnt = decoded[cnt_col][pos]
                    if func is AggFunc.SUM:
                        rendered.append(decoded[sum_col][pos] if cnt > 0 else None)
                    elif func is AggFunc.AVG:
                        rendered.append(
                            decoded[sum_col][pos] / cnt if cnt > 0 else None
                        )
                    else:
                        rendered.append(cnt)
                out.append(tuple(rendered))
        return out

    def replace(self, grouped: GroupedAggregates) -> None:
        """Full refresh: drop and rebuild the summary table contents."""
        table = self._db.table(self._table_name)
        snapshot = self._db.transactions.global_snapshot()
        gkeys = []
        for partition in table.partitions():
            mask = partition.visible_mask(snapshot)
            fragment = partition.column("gkey")
            gkeys.extend(fragment.value_at(int(i)) for i in np.flatnonzero(mask))
        for gkey in gkeys:
            self._db.delete(self._table_name, gkey)
        self._group_values.clear()
        self._load_initial(grouped)
