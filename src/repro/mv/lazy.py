"""Lazy incremental view maintenance (Zhou & Larson [32]).

Modifications are appended to a change log; the log is drained into the
view value immediately before the view is read.  Writers stay fast, but a
read after a write burst pays the whole accumulated maintenance bill —
the trade-off Fig. 6 explores across insert ratios.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..database import Database
from .view import MaterializedView


class LazyIncrementalView(MaterializedView):
    """Maintains a change log, applied on read."""

    def __init__(self, db: Database, query, name: str = "lazy_view",
                 backing: str = "memory"):
        super().__init__(db, query, name, backing=backing)
        self._log: List[Tuple[Dict[str, object], int]] = []
        db.register_write_listener(self)

    def close(self) -> None:
        """Detach from the database's write path."""
        self._db.unregister_write_listener(self)

    @property
    def pending_changes(self) -> int:
        """Changes logged but not yet applied."""
        return len(self._log)

    # write-listener protocol ------------------------------------------------
    def on_insert(self, table: str, row: Dict[str, object], tid: int) -> None:
        """Log the inserted row (applied on next read)."""
        if table == self.table_name:
            self._log.append((row, 1))

    def on_update(self, table, old_row, new_row, tid: int) -> None:
        """Log the update as a remove + add pair."""
        if table == self.table_name:
            self._log.append((old_row, -1))
            self._log.append((new_row, 1))

    def on_delete(self, table: str, old_row: Dict[str, object], tid: int) -> None:
        """Log the removal of the old row."""
        if table == self.table_name:
            self._log.append((old_row, -1))

    # reads -------------------------------------------------------------------
    def apply_pending(self) -> int:
        """Drain the change log into the view value; returns changes applied."""
        applied = len(self._log)
        for row, sign in self._log:
            self._apply_row(row, sign)
        self._log.clear()
        return applied

    def read(self):
        """Drain the change log, then serve the view contents."""
        self.apply_pending()
        return super().read()
