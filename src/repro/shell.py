"""An interactive SQL shell over a :class:`~repro.database.Database`.

Launch with ``python -m repro``.  SQL statements terminate with ``;`` and
run under the current execution strategy; backslash meta-commands inspect
the engine:

=================  =====================================================
``\\help``          this text
``\\demo``          load the ERP demo dataset (Header/Item/ProductCategory)
``\\tables``        tables with per-partition row counts
``\\schema T``      columns of table T
``\\strategy [s]``  show or set the strategy (uncached / cached_no_pruning
                   / cached_empty_delta / cached_full_pruning)
``\\explain SQL``   the cache plan for a query, without executing it
``\\analyze SQL``   execute the query and show its span trace
``\\merge [T]``     run the delta merge (for one table or all)
``\\entries``       aggregate cache entries and their metrics
``\\plans``         plan cache contents and hit/miss/invalidation counters
``\\stats``         storage / cache / enforcement statistics
``\\health``        governor health: breaker states and degraded modes
``\\recycler``      cross-query subjoin recycler occupancy and hit rates
``\\metrics``       the metrics registry in Prometheus text format
``\\save DIR``      write a snapshot of the database to a directory
``\\open DIR``      replace the session database with a saved snapshot
``\\report``        the report of the last executed query
``\\quit``          leave
=================  =====================================================
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

from .core.strategies import ExecutionStrategy
from .database import Database
from .errors import ReproError

PROMPT = "repro> "
CONTINUATION = "  ...> "


class Shell:
    """Line-oriented REPL; testable via explicit input/output streams."""

    def __init__(
        self,
        db: Optional[Database] = None,
        stdin: Optional[IO] = None,
        stdout: Optional[IO] = None,
    ):
        self.db = db if db is not None else Database()
        self._in = stdin if stdin is not None else sys.stdin
        self._out = stdout if stdout is not None else sys.stdout
        self.strategy = ExecutionStrategy.CACHED_FULL_PRUNING
        self._running = False

    # ------------------------------------------------------------------
    def _print(self, text: str = "") -> None:
        self._out.write(text + "\n")

    def _read_line(self, prompt: str) -> Optional[str]:
        self._out.write(prompt)
        self._out.flush()
        line = self._in.readline()
        if not line:
            return None
        return line.rstrip("\n")

    # ------------------------------------------------------------------
    def run(self) -> None:
        """The REPL loop; returns on \\quit or end of input."""
        self._print("repro interactive shell — \\help for help")
        self._running = True
        buffer = ""
        while self._running:
            prompt = CONTINUATION if buffer else PROMPT
            line = self._read_line(prompt)
            if line is None:
                break
            stripped = line.strip()
            if not buffer and not stripped:
                continue
            if not buffer and stripped.startswith("\\"):
                self._dispatch_meta(stripped)
                continue
            buffer = f"{buffer} {stripped}".strip()
            if buffer.endswith(";"):
                self._execute_sql(buffer[:-1])
                buffer = ""

    # ------------------------------------------------------------------
    def _dispatch_meta(self, line: str) -> None:
        command, _, argument = line.partition(" ")
        argument = argument.strip()
        handler = {
            "\\help": self._cmd_help,
            "\\demo": self._cmd_demo,
            "\\tables": self._cmd_tables,
            "\\schema": self._cmd_schema,
            "\\strategy": self._cmd_strategy,
            "\\explain": self._cmd_explain,
            "\\analyze": self._cmd_analyze,
            "\\merge": self._cmd_merge,
            "\\entries": self._cmd_entries,
            "\\plans": self._cmd_plans,
            "\\report": self._cmd_report,
            "\\stats": self._cmd_stats,
            "\\health": self._cmd_health,
            "\\recycler": self._cmd_recycler,
            "\\metrics": self._cmd_metrics,
            "\\save": self._cmd_save,
            "\\open": self._cmd_open,
            "\\quit": self._cmd_quit,
            "\\q": self._cmd_quit,
        }.get(command)
        if handler is None:
            self._print(f"unknown command {command!r}; \\help for help")
            return
        try:
            handler(argument)
        except ReproError as error:
            self._print(f"error: {error}")

    def _execute_sql(self, sql: str) -> None:
        try:
            started = time.perf_counter()
            result = self.db.query(sql, strategy=self.strategy)
            elapsed = time.perf_counter() - started
        except ReproError as error:
            self._print(f"error: {error}")
            return
        self._print(result.to_text())
        report = result.report
        pruned = report.prune.pruned_total if report else 0
        self._print(
            f"({len(result)} rows, {elapsed * 1000:.2f} ms, "
            f"strategy={self.strategy.value}, subjoins pruned={pruned})"
        )

    # ------------------------------------------------------------------
    # meta commands
    # ------------------------------------------------------------------
    def _cmd_help(self, _argument: str) -> None:
        self._print(__doc__.replace("\\\\", "\\"))

    def _cmd_demo(self, _argument: str) -> None:
        from .workloads.erp import ErpConfig, ErpWorkload

        if self.db.catalog.table_names():
            self._print("database is not empty; \\demo needs a fresh shell")
            return
        workload = ErpWorkload(self.db, ErpConfig(seed=1, n_categories=8))
        workload.insert_objects(300, merge_after=True)
        workload.insert_objects(20)
        self._print(
            "loaded ERP demo: Header/Item/ProductCategory with matching "
            "dependencies; 300 merged objects + 20 in the deltas.  Try:\n  "
            + workload.profit_and_loss_sql(year=2013).replace("\n", " ")
            + ";"
        )

    def _cmd_tables(self, _argument: str) -> None:
        names = self.db.catalog.table_names()
        if not names:
            self._print("(no tables; \\demo loads a sample dataset)")
            return
        for name in names:
            table = self.db.table(name)
            parts = ", ".join(
                # Mapped cold partitions get a tier marker; resident ones
                # print exactly as before.
                f"{p.name}={p.row_count}"
                + (":mapped" if p.storage_tier == "mapped" else "")
                for p in table.partitions()
            )
            self._print(f"{name}  [{parts}]")

    def _cmd_schema(self, argument: str) -> None:
        if not argument:
            self._print("usage: \\schema <table>")
            return
        table = self.db.table(argument)
        for column in table.schema:
            flags = []
            if column.name == table.schema.primary_key:
                flags.append("PRIMARY KEY")
            if not column.nullable:
                flags.append("NOT NULL")
            if column.is_tid:
                flags.append("MD tid")
            suffix = f"  ({', '.join(flags)})" if flags else ""
            self._print(f"{column.name}  {column.sql_type.value}{suffix}")

    def _cmd_strategy(self, argument: str) -> None:
        if argument:
            try:
                self.strategy = ExecutionStrategy(argument)
            except ValueError:
                valid = ", ".join(s.value for s in ExecutionStrategy)
                self._print(f"unknown strategy {argument!r}; valid: {valid}")
                return
        self._print(f"strategy: {self.strategy.value}")

    def _cmd_explain(self, argument: str) -> None:
        if not argument:
            self._print("usage: \\explain <sql>")
            return
        self._print(self.db.explain(argument.rstrip(";"), strategy=self.strategy))

    def _cmd_analyze(self, argument: str) -> None:
        if not argument:
            self._print("usage: \\analyze <sql>")
            return
        trace = self.db.explain_analyze(
            argument.rstrip(";"), strategy=self.strategy
        )
        self._print(trace.render())

    def _cmd_merge(self, argument: str) -> None:
        stats = self.db.merge(argument or None)
        moved = sum(s.rows_moved for s in stats)
        dropped = sum(s.rows_dropped for s in stats)
        self._print(f"merged: {moved} rows moved, {dropped} dropped")

    def _cmd_entries(self, _argument: str) -> None:
        entries = self.db.cache.entries()
        if not entries:
            self._print("(aggregate cache is empty)")
            return
        for entry in entries:
            combo = ", ".join(f"{a}:{p}" for a, p in entry.key.combo)
            metrics = entry.metrics
            memo = entry.delta_memo
            memo_text = (
                f"memo@tid{memo.anchor}"
                f"(covered={memo.rows_below_watermarks()} rows)"
                if memo is not None
                else "memo=none"
            )
            self._print(
                f"[{combo}] groups={entry.value.group_count()} "
                f"records={metrics.aggregated_records_main} "
                f"uses={metrics.reference_count} "
                f"size~{metrics.size_bytes}B {memo_text}"
            )

    def _cmd_plans(self, _argument: str) -> None:
        cache = self.db.plan_cache
        stats = cache.stats()
        self._print(
            f"plan cache: entries={stats['entries']} hits={stats['hits']} "
            f"misses={stats['misses']} invalidations={stats['invalidations']} "
            f"evictions={stats['evictions']}"
        )
        for plan in cache.cached_plans():
            evaluated = sum(1 for s in plan.subjoins if s.action == "evaluate")
            self._print(
                f"  [{plan.strategy.value}] tables={','.join(plan.table_names())} "
                f"subjoins={len(plan.subjoins)} (evaluate={evaluated}) "
                f"{plan.query.canonical_key()}"
            )

    def _cmd_report(self, _argument: str) -> None:
        report = self.db.last_report
        if report is None:
            self._print("(no query executed yet)")
            return
        prune = report.prune
        self._print(
            f"strategy={report.strategy.value} hits={report.cache_hits} "
            f"created={report.entries_created} "
            f"subjoins: total={prune.combos_total} "
            f"evaluated={prune.evaluated} pruned(empty={prune.pruned_empty}, "
            f"logical={prune.pruned_logical}, dynamic={prune.pruned_dynamic}) "
            f"compensation={report.delta_memo_mode or 'n/a'}"
            + (
                f" rows-saved={report.delta_memo_rows_saved}"
                if report.delta_memo_mode == "incremental"
                else ""
            )
            + f" time={report.time_total * 1000:.2f}ms"
        )

    def _cmd_stats(self, _argument: str) -> None:
        self._print(self.db.statistics().render())

    def _cmd_health(self, _argument: str) -> None:
        self._print(self.db.health().render())

    def _cmd_recycler(self, _argument: str) -> None:
        counters = self.db.cache.counters_snapshot()
        if self.db.cache.recycler is None:
            self._print("subjoin recycler: disabled (subjoin_recycler=False)")
            return
        probes = (
            counters["recycler_hits"]
            + counters["recycler_misses"]
            + counters["recycler_stale"]
        )
        rate = counters["recycler_hits"] / probes if probes else 0.0
        self._print(
            f"subjoin recycler: entries={counters['recycler_entries']} "
            f"~{counters['recycler_bytes']}B "
            f"(budget {self.db.cache.recycler.max_bytes}B)"
        )
        self._print(
            f"  probes: hits={counters['recycler_hits']} "
            f"misses={counters['recycler_misses']} "
            f"stale={counters['recycler_stale']} hit-rate={rate:.1%}"
        )
        self._print(
            f"  stored={counters['recycler_stored']} "
            f"evictions={counters['recycler_evictions']}"
        )
        self._print(
            f"  refresh: advances={counters['refresh_advances']} "
            f"rebuilds={counters['refresh_rebuilds']}"
        )

    def _cmd_metrics(self, _argument: str) -> None:
        text = self.db.export_metrics()
        if not text:
            self._print("(observability is disabled for this database)")
            return
        self._print(text.rstrip("\n"))

    def _cmd_save(self, argument: str) -> None:
        if not argument:
            self._print("usage: \\save <directory>")
            return
        from .storage.snapshot import save_database

        path = save_database(self.db, argument)
        self._print(f"snapshot written to {path}")

    def _cmd_open(self, argument: str) -> None:
        if not argument:
            self._print("usage: \\open <directory>")
            return
        from .storage.snapshot import load_database

        replaced = self.db
        self.db = load_database(argument)
        # The old database's worker pool (and WAL handle) would otherwise
        # leak its threads for the rest of the session.
        replaced.close()
        self._print(
            f"snapshot loaded; tables: {', '.join(self.db.catalog.table_names())}"
        )

    def _cmd_quit(self, _argument: str) -> None:
        self._print("bye")
        self._running = False


def main() -> None:  # pragma: no cover - thin CLI wrapper
    """Entry point for ``python -m repro``."""
    Shell().run()


if __name__ == "__main__":  # pragma: no cover
    main()
