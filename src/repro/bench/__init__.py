"""Benchmark harness utilities."""

from .harness import (
    STRATEGY_LABELS,
    FigureCollector,
    FigureReport,
    normalize,
    strategy_sweep,
    time_call,
    time_query,
)

__all__ = [
    "FigureCollector",
    "FigureReport",
    "STRATEGY_LABELS",
    "normalize",
    "strategy_sweep",
    "time_call",
    "time_query",
]
