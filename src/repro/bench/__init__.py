"""Benchmark harness utilities."""

from .harness import (
    STRATEGY_LABELS,
    FigureCollector,
    FigureReport,
    dump_metrics,
    metrics_snapshot,
    normalize,
    strategy_sweep,
    time_call,
    time_query,
)

__all__ = [
    "FigureCollector",
    "FigureReport",
    "STRATEGY_LABELS",
    "dump_metrics",
    "metrics_snapshot",
    "normalize",
    "strategy_sweep",
    "time_call",
    "time_query",
]
