"""Benchmark harness utilities: timing sweeps and figure collection.

The benchmark files under ``benchmarks/`` measure individual cells with
pytest-benchmark; the harness adds what the paper's figures need on top —
running a (parameter x strategy) sweep, normalizing a series the way every
figure in the paper is normalized, and collecting rows into a per-figure
report that is printed at the end of the benchmark session and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..core.strategies import ExecutionStrategy
from ..database import Database

STRATEGY_LABELS = {
    ExecutionStrategy.UNCACHED: "uncached",
    ExecutionStrategy.CACHED_NO_PRUNING: "cached/no-pruning",
    ExecutionStrategy.CACHED_EMPTY_DELTA: "cached/empty-delta",
    ExecutionStrategy.CACHED_FULL_PRUNING: "cached/full-pruning",
}


def time_call(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-N wall-clock seconds for one callable."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def time_query(
    db: Database,
    sql: str,
    strategy: ExecutionStrategy,
    repeats: int = 3,
    warmup: bool = True,
) -> float:
    """Best-of-N seconds for one query under one strategy.

    The warmup run creates/maintains the cache entry so the measurement
    reflects steady-state usage, matching the paper's repeated-query
    methodology (100 queries per point in Fig. 7).
    """
    if warmup:
        db.query(sql, strategy=strategy)
    return time_call(lambda: db.query(sql, strategy=strategy), repeats)


def strategy_sweep(
    db: Database,
    sql: str,
    strategies: Sequence[ExecutionStrategy],
    repeats: int = 3,
) -> Dict[ExecutionStrategy, float]:
    """Measure one query under several strategies."""
    return {
        strategy: time_query(db, sql, strategy, repeats=repeats)
        for strategy in strategies
    }


def normalize(values: Sequence[float], reference: Optional[float] = None) -> List[float]:
    """Normalize a series the way the paper's figures are: by its maximum
    (or an explicit reference value)."""
    base = reference if reference is not None else max(values)
    if base == 0:
        return [0.0 for _ in values]
    return [value / base for value in values]


@dataclass
class FigureReport:
    """Rows of one regenerated figure/table, plus the paper's claim."""

    figure: str
    title: str
    paper_claim: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one measured row to the figure."""
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        """Attach a free-text note rendered under the table."""
        self.notes.append(text)

    def render(self) -> str:
        """Plain-text rendering: claim line + aligned table."""
        cells = [[_format(v) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            f"== {self.figure}: {self.title} ==",
            f"paper: {self.paper_claim}",
            " | ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)),
            "-+-".join("-" * w for w in widths),
        ]
        lines += [
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in cells
        ]
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def metrics_snapshot(db: Database) -> Dict[str, float]:
    """The benchmark database's metric samples (empty if obs is off)."""
    return db.metrics_snapshot()


def dump_metrics(db: Database, path, label: Optional[str] = None) -> Path:
    """Write the database's metric samples next to the benchmark JSON.

    The file is a JSON object ``{"label": ..., "metrics": {name: value}}``
    so a benchmark run's counters (subjoins pruned/evaluated, compensation
    latencies, cache hit rate) can be correlated with its timings.
    Returns the path written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"label": label, "metrics": metrics_snapshot(db)}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


class FigureCollector:
    """Session-wide registry of figure reports (printed at session end)."""

    def __init__(self):
        self._reports: Dict[str, FigureReport] = {}
        #: Metric snapshots attached by benchmarks, keyed by label.
        self.metrics: Dict[str, Dict[str, float]] = {}

    def attach_metrics(self, label: str, db: Database) -> None:
        """Record one benchmark database's metric samples under a label."""
        self.metrics[label] = metrics_snapshot(db)

    def dump_metrics_json(self, path) -> Optional[Path]:
        """Write every attached snapshot as one JSON file (None if empty)."""
        if not self.metrics:
            return None
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.metrics, indent=2, sort_keys=True) + "\n")
        return path

    def report(
        self, figure: str, title: str, paper_claim: str, headers: List[str]
    ) -> FigureReport:
        """Get or create the report for a figure id."""
        if figure not in self._reports:
            self._reports[figure] = FigureReport(figure, title, paper_claim, headers)
        return self._reports[figure]

    def render_all(self) -> str:
        """Render every non-empty report under one banner."""
        blocks = [
            report.render()
            for _name, report in sorted(self._reports.items())
            if report.rows
        ]
        if not blocks:
            return ""
        banner = "PAPER FIGURE REPRODUCTION SUMMARY (normalized, see EXPERIMENTS.md)"
        return "\n\n".join(["=" * len(banner), banner, "=" * len(banner)] + blocks)


def _format(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
